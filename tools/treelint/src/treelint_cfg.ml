(* Control-flow graphs over dune's .cmt Typedtrees.

   Each function-like body — a toplevel `let f args = ...`, a let-bound
   local helper, a lambda passed to an iterator — is lowered to a small CFG
   whose nodes carry dataflow events (binds, field reads, escapes, returns)
   and terminate in at most one call, raise or fallthrough.  Exceptional
   control flow is explicit: every node that can raise has exception
   successors, `try`/`match ... exception` handlers become dispatch nodes
   with an implicit re-raise edge, and `Fun.protect ~finally` is inlined on
   both the normal and the exceptional path so release-in-finally protocols
   are visible to the rules.

   The graphs deliberately approximate:
   - pattern destructuring is value flow from the scrutinee to every
     binder (fine for taint, alias-widening for resources);
   - a variable captured by a lambda, stored in a ref/structure or
     returned escapes — the obligation it carries shifts to whoever holds
     the structure (treelint summaries pick returns up, the rest is the
     caller's contract);
   - whether a call can raise is the *rules'* decision (config `total`
     lists plus computed summaries); the graph always carries the edge. *)

type var = int
(* An [Ident] stamp for source variables; negative for synthetic values
   (call results, branch phis). *)

type event =
  | Bind of { dst : var; src : var; loc : Location.t }
      (* value flow: let-alias, pattern binder, branch phi, structure
         component *)
  | Field_get of { dst : var; owner : string; is_rng : bool; loc : Location.t }
      (* [e.f] on a record declared by module [owner]; [is_rng] when the
         label's type is the simulator's [Rng.t] — stream provenance *)
  | Escape of { v : var; how : string; loc : Location.t }
  | Return of { v : var; loc : Location.t }  (* flows to the fn result *)

type call = {
  c_name : string;  (* normalized qualified callee, "" when local/unknown *)
  c_fn : var;       (* callee stamp when it is a local variable, else -1 *)
  c_args : var list;  (* ident arguments, borrow semantics *)
  c_ret : var;
  c_loc : Location.t;
}

type term =
  | Fallthrough
  | Tcall of call  (* may raise — the rules decide — via n_exn *)
  | Traise         (* raise/failwith/invalid_arg/assert false: always n_exn *)

type node = {
  mutable n_ev : event list;  (* reversed while building; events precede term *)
  mutable n_term : term;
  mutable n_succ : int list;
  mutable n_exn : int list;
}

type fn = {
  fn_id : string;       (* "Exec.iter_envs", "Exec.iter_envs#2" for lambdas *)
  fn_module : string;
  fn_params : var list;
  fn_loc : Location.t;
  fn_nodes : node array;
  fn_entry : int;
  fn_exit : int;      (* normal exit *)
  fn_exn_exit : int;  (* exceptional exit *)
  fn_vars : (var * string) list;    (* stamp -> source name, for messages *)
  fn_locals : (var * string) list;  (* let-bound function stamp -> fn_id *)
}

type mod_cfg = {
  mc_module : string;
  mc_fns : fn list;
  mc_toplevel : (var * string) list;  (* toplevel binding stamp -> fn_id *)
}

type hooks = {
  h_norm : Path.t -> string;
      (* normalized qualified name ("Sim.charge_sort", "Hashtbl.add"),
         "" for local idents *)
  h_field : Types.label_description -> (string * bool) option;
      (* Some (record owner module, label type is the simulator Rng.t) *)
}

let no_var = -1

(* Calls that store an argument into a longer-lived structure: the stored
   value escapes the current frame.  Constructs/records/tuples are handled
   structurally; this list covers the stdlib's imperative sinks. *)
let store_calls =
  [ ":="; "ref"; "Hashtbl.add"; "Hashtbl.replace"; "Queue.add"; "Queue.push";
    "Stack.push"; "Array.set"; "Array.unsafe_set"; "Bytes.set" ]

let raise_calls = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

(* ------------------------------------------------------------------ *)
(* Growable node store                                                *)
(* ------------------------------------------------------------------ *)

module Vec = struct
  type 'a t = { mutable a : 'a array; mutable n : int; dummy : 'a }

  let create dummy = { a = Array.make 16 dummy; n = 0; dummy }

  let push t x =
    if t.n = Array.length t.a then begin
      let a' = Array.make (2 * t.n) t.dummy in
      Array.blit t.a 0 a' 0 t.n;
      t.a <- a'
    end;
    t.a.(t.n) <- x;
    t.n <- t.n + 1;
    t.n - 1

  let get t i = t.a.(i)
  let to_array t = Array.sub t.a 0 t.n
end

(* ------------------------------------------------------------------ *)
(* Builder                                                            *)
(* ------------------------------------------------------------------ *)

type ctx = {
  hooks : hooks;
  modname : string;
  vars_tbl : (string, int) Hashtbl.t;
      (* Ident.unique_name -> var, for every binding seen so far; doubles
         as the "known" set for capture detection *)
  mutable next : int;
  mutable subs : fn list;  (* lowered sub-functions, reversed *)
}

let lookup_var ctx id = Hashtbl.find_opt ctx.vars_tbl (Ident.unique_name id)

let intern_var ctx id =
  match lookup_var ctx id with
  | Some v -> v
  | None ->
      let v = ctx.next in
      ctx.next <- v + 1;
      Hashtbl.add ctx.vars_tbl (Ident.unique_name id) v;
      v

type builder = {
  ctx : ctx;
  fn_id : string;
  nodes : node Vec.t;
  mutable fresh : var;
  mutable vars : (var * string) list;
  mutable locals : (var * string) list;
  mutable nsub : int;  (* per-enclosing-function lambda counter *)
}

let dummy_node = { n_ev = []; n_term = Fallthrough; n_succ = []; n_exn = [] }

let new_builder ctx fn_id =
  {
    ctx;
    fn_id;
    nodes = Vec.create dummy_node;
    fresh = -1;
    vars = [];
    locals = [];
    nsub = 0;
  }

let new_node b =
  Vec.push b.nodes { n_ev = []; n_term = Fallthrough; n_succ = []; n_exn = [] }

let node b i = Vec.get b.nodes i
let add_ev b i ev = (node b i).n_ev <- ev :: (node b i).n_ev

let link b i j =
  if not (List.mem j (node b i).n_succ) then
    (node b i).n_succ <- j :: (node b i).n_succ

let link_exn b i j =
  if not (List.mem j (node b i).n_exn) then
    (node b i).n_exn <- j :: (node b i).n_exn

let fresh_var b =
  b.fresh <- b.fresh - 1;
  b.fresh

let bind_var b id name =
  let v = intern_var b.ctx id in
  if not (List.mem_assoc v b.vars) then b.vars <- (v, name) :: b.vars;
  v

(* All binders of a pattern, as value flow from [src]. *)
let rec bind_pattern : type k.
    builder -> int -> k Typedtree.general_pattern -> src:var -> unit =
 fun b cur pat ~src ->
  let open Typedtree in
  let recurse p = bind_pattern b cur p ~src in
  match pat.pat_desc with
  | Tpat_var (id, { txt; loc }) ->
      let v = bind_var b id txt in
      add_ev b cur (Bind { dst = v; src; loc })
  | Tpat_alias (p, id, { txt; loc }) ->
      let v = bind_var b id txt in
      add_ev b cur (Bind { dst = v; src; loc });
      recurse p
  | Tpat_tuple ps | Tpat_array ps -> List.iter recurse ps
  | Tpat_construct (_, _, ps, _) -> List.iter recurse ps
  | Tpat_variant (_, po, _) -> Option.iter recurse po
  | Tpat_record (fields, _) -> List.iter (fun (_, _, p) -> recurse p) fields
  | Tpat_lazy p -> recurse p
  | Tpat_or (p, q, _) ->
      recurse p;
      recurse q
  | Tpat_value p -> recurse (p :> value general_pattern)
  | Tpat_exception p -> recurse p
  | Tpat_any | Tpat_constant _ -> ()

(* A pattern that matches every value: a catch-all handler case kills the
   re-raise edge (nothing escapes past it). *)
let rec irrefutable (p : Typedtree.pattern) =
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_any | Typedtree.Tpat_var _ -> true
  | Typedtree.Tpat_alias (q, _, _) -> irrefutable q
  | _ -> false

(* Stamps of already-bound variables referenced inside [expr] — the capture
   set of a lambda. *)
let referenced_known ctx expr =
  let caps = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.Typedtree.exp_desc with
          | Typedtree.Texp_ident (Path.Pident id, _, _) -> (
              match lookup_var ctx id with
              | Some s when not (List.mem s !caps) -> caps := s :: !caps
              | _ -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it expr;
  List.rev !caps

let is_function e =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function _ -> true
  | _ -> false

(* Flatten nested Texp_apply (partial application re-applied) into one
   callee + argument list. *)
let rec flatten_apply callee args =
  match callee.Typedtree.exp_desc with
  | Typedtree.Texp_apply (inner, inner_args) ->
      flatten_apply inner (inner_args @ args)
  | _ -> (callee, args)

let callee_name hooks callee =
  match callee.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> hooks.h_norm p
  | _ -> ""

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                *)
(* ------------------------------------------------------------------ *)

(* [low b ~cur ~exn e] lowers [e] starting in node [cur] with exceptional
   edges routed to [exn]; returns the node control falls out of and the
   variable holding the value (no_var when uninteresting). *)
let rec low b ~cur ~exn (e : Typedtree.expression) : int * var =
  let open Typedtree in
  let loc = e.exp_loc in
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) when lookup_var b.ctx id <> None ->
      (cur, Option.get (lookup_var b.ctx id))
  | Texp_ident _ | Texp_constant _ | Texp_instvar _ | Texp_override _
  | Texp_object _ | Texp_pack _ | Texp_extension_constructor _ | Texp_new _ ->
      (cur, no_var)
  | Texp_let (_, vbs, body) ->
      let cur =
        List.fold_left (fun cur vb -> lower_binding b ~cur ~exn vb) cur vbs
      in
      low b ~cur ~exn body
  | Texp_function _ ->
      ignore (lower_lambda b ~cur e);
      (cur, no_var)
  | Texp_apply (callee, args) -> low_apply b ~cur ~exn ~loc callee args
  | Texp_match (scrut, cases, partial) ->
      low_match b ~cur ~exn ~loc scrut cases partial
  | Texp_try (body, cases) -> low_try b ~cur ~exn ~loc body cases
  | Texp_tuple es -> low_struct b ~cur ~exn ~loc "tuple" es
  | Texp_construct (_, _, es) -> low_struct b ~cur ~exn ~loc "construct" es
  | Texp_variant (_, eo) ->
      low_struct b ~cur ~exn ~loc "variant" (Option.to_list eo)
  | Texp_array es -> low_struct b ~cur ~exn ~loc "array" es
  | Texp_record { fields; extended_expression; _ } ->
      let cur0, init =
        match extended_expression with
        | None -> (cur, [])
        | Some ex ->
            let c, v = low b ~cur ~exn ex in
            (c, if v <> no_var then [ v ] else [])
      in
      let cur = ref cur0 in
      let parts = ref init in
      Array.iter
        (fun (_, def) ->
          match def with
          | Kept _ -> ()
          | Overridden (_, fe) ->
              let c, v = low b ~cur:!cur ~exn fe in
              cur := c;
              if v <> no_var then parts := v :: !parts)
        fields;
      let dst = fresh_var b in
      List.iter
        (fun v ->
          add_ev b !cur (Bind { dst; src = v; loc });
          add_ev b !cur (Escape { v; how = "stored in record"; loc }))
        !parts;
      (!cur, dst)
  | Texp_field (r, _, lbl) ->
      let cur, _rv = low b ~cur ~exn r in
      let dst = fresh_var b in
      (match b.ctx.hooks.h_field lbl with
      | Some (owner, is_rng) ->
          add_ev b cur (Field_get { dst; owner; is_rng; loc })
      | None -> ());
      (cur, dst)
  | Texp_setfield (r, _, _, v) ->
      let cur, _ = low b ~cur ~exn r in
      let cur, vv = low b ~cur ~exn v in
      if vv <> no_var then
        add_ev b cur (Escape { v = vv; how = "stored in mutable field"; loc });
      (cur, no_var)
  | Texp_ifthenelse (cond, et, eo) ->
      let cur, _ = low b ~cur ~exn cond in
      let m = new_node b in
      let phi = fresh_var b in
      let branch e0 =
        let bn = new_node b in
        link b cur bn;
        let bend, bv = low b ~cur:bn ~exn e0 in
        if bv <> no_var then add_ev b bend (Bind { dst = phi; src = bv; loc });
        link b bend m
      in
      branch et;
      (match eo with Some ee -> branch ee | None -> link b cur m);
      (m, phi)
  | Texp_sequence (e1, e2) ->
      let cur, _ = low b ~cur ~exn e1 in
      low b ~cur ~exn e2
  | Texp_while (cond, body) ->
      let nc = new_node b in
      link b cur nc;
      let cend, _ = low b ~cur:nc ~exn cond in
      let nb = new_node b in
      let nexit = new_node b in
      link b cend nb;
      link b cend nexit;
      let bend, _ = low b ~cur:nb ~exn body in
      link b bend nc;
      (nexit, no_var)
  | Texp_for (id, _, lo, hi, _, body) ->
      let cur, _ = low b ~cur ~exn lo in
      let cur, _ = low b ~cur ~exn hi in
      let v = bind_var b id (Ident.name id) in
      add_ev b cur (Bind { dst = v; src = no_var; loc });
      let nh = new_node b in
      link b cur nh;
      let nb = new_node b in
      let nexit = new_node b in
      link b nh nb;
      link b nh nexit;
      let bend, _ = low b ~cur:nb ~exn body in
      link b bend nh;
      (nexit, no_var)
  | Texp_assert (cond, _) -> (
      let cur, _ = low b ~cur ~exn cond in
      match cond.exp_desc with
      | Texp_construct (_, c, []) when c.Types.cstr_name = "false" ->
          (node b cur).n_term <- Traise;
          link_exn b cur exn;
          (new_node b, no_var)  (* unreachable continuation *)
      | _ ->
          emit_call b ~cur ~exn
            {
              c_name = "assert";
              c_fn = no_var;
              c_args = [];
              c_ret = fresh_var b;
              c_loc = loc;
            })
  | Texp_lazy body ->
      (* eager approximation: the thunk's effects analyzed in place *)
      low b ~cur ~exn body
  | Texp_send (obj, _) ->
      let cur, _ = low b ~cur ~exn obj in
      emit_call b ~cur ~exn
        {
          c_name = "#send";
          c_fn = no_var;
          c_args = [];
          c_ret = fresh_var b;
          c_loc = loc;
        }
  | Texp_letmodule (_, _, _, _, body) -> low b ~cur ~exn body
  | Texp_letexception (_, body) -> low b ~cur ~exn body
  | Texp_open (_, body) -> low b ~cur ~exn body
  | Texp_letop { let_; ands; body; _ } ->
      let cur = ref cur in
      List.iter
        (fun (bop : binding_op) ->
          let c, _ = low b ~cur:!cur ~exn bop.bop_exp in
          cur := c)
        (let_ :: ands);
      let src = fresh_var b in
      bind_pattern b !cur body.c_lhs ~src;
      low b ~cur:!cur ~exn body.c_rhs
  | Texp_unreachable ->
      (node b cur).n_term <- Traise;
      link_exn b cur exn;
      (new_node b, no_var)
  | _ -> (cur, no_var)  (* setinstvar and friends: nothing to track *)

(* One let binding: named local functions are lowered as sub-fns and
   remembered in [locals]; everything else is plain value flow. *)
and lower_binding b ~cur ~exn (vb : Typedtree.value_binding) =
  let open Typedtree in
  if is_function vb.vb_expr then begin
    (match vb.vb_pat.pat_desc with
    | Tpat_var (id, { txt; _ }) | Tpat_alias (_, id, { txt; _ }) ->
        let v = bind_var b id txt in
        let fid = lower_lambda b ~cur ~name:txt vb.vb_expr in
        b.locals <- (v, fid) :: b.locals
    | _ -> ignore (lower_lambda b ~cur vb.vb_expr));
    cur
  end
  else begin
    let cur, v = low b ~cur ~exn vb.vb_expr in
    bind_pattern b cur vb.vb_pat ~src:v;
    cur
  end

(* Structured values: children flow into a fresh composite and escape. *)
and low_struct b ~cur ~exn ~loc how es =
  let cur = ref cur in
  let parts = ref [] in
  List.iter
    (fun ce ->
      let c, v = low b ~cur:!cur ~exn ce in
      cur := c;
      if v <> no_var then parts := v :: !parts)
    es;
  let dst = fresh_var b in
  List.iter
    (fun v ->
      add_ev b !cur (Bind { dst; src = v; loc });
      add_ev b !cur (Escape { v; how = "stored in " ^ how; loc }))
    !parts;
  (!cur, dst)

(* A lambda in value position: lowered as a standalone sub-function; its
   captures escape the enclosing frame (the closure owns them now). *)
and lower_lambda b ~cur ?name (e : Typedtree.expression) : string =
  b.nsub <- b.nsub + 1;
  let fid =
    match name with
    | Some n -> b.fn_id ^ "." ^ n
    | None -> Printf.sprintf "%s#%d" b.fn_id b.nsub
  in
  let caps = referenced_known b.ctx e in
  List.iter
    (fun s ->
      add_ev b cur
        (Escape { v = s; how = "captured by closure"; loc = e.exp_loc }))
    caps;
  let fn = lower_function b.ctx ~fn_id:fid e in
  b.ctx.subs <- fn :: b.ctx.subs;
  fid

(* Applications, with @@ / |> rewriting, Fun.protect inlining, and the
   raise family mapped to Traise. *)
and low_apply b ~cur ~exn ~loc callee args =
  let open Typedtree in
  let callee, args = flatten_apply callee args in
  let name = callee_name b.ctx.hooks callee in
  let positional = List.filter_map (fun (_, a) -> a) args in
  match (name, positional) with
  | "@@", f :: rest when rest <> [] ->
      low_apply b ~cur ~exn ~loc f
        (List.map (fun a -> (Asttypes.Nolabel, Some a)) rest)
  | "|>", [ x; f ] ->
      low_apply b ~cur ~exn ~loc f [ (Asttypes.Nolabel, Some x) ]
  | "Fun.protect", _ -> low_protect b ~cur ~exn ~loc args
  | _ ->
      if is_function callee then ignore (lower_lambda b ~cur callee);
      (* arguments left to right: idents borrow, lambdas become sub-fns,
         sub-expressions lower inline *)
      let cur = ref cur in
      let argv = ref [] in
      List.iter
        (fun (_, a) ->
          match a with
          | None -> ()
          | Some ae when is_function ae -> ignore (lower_lambda b ~cur:!cur ae)
          | Some ae ->
              let c, v = low b ~cur:!cur ~exn ae in
              cur := c;
              argv := v :: !argv)
        args;
      let argv = List.rev (List.filter (fun v -> v <> no_var) !argv) in
      if List.mem name raise_calls then begin
        (node b !cur).n_term <- Traise;
        link_exn b !cur exn;
        (new_node b, no_var)
      end
      else begin
        if List.mem name store_calls then
          List.iter
            (fun v ->
              add_ev b !cur (Escape { v; how = "stored via " ^ name; loc }))
            argv;
        let c_fn =
          match callee.exp_desc with
          | Texp_ident (Path.Pident id, _, _) ->
              Option.value (lookup_var b.ctx id) ~default:no_var
          | _ -> no_var
        in
        emit_call b ~cur:!cur ~exn
          {
            c_name = name;
            c_fn;
            c_args = argv;
            c_ret = fresh_var b;
            c_loc = loc;
          }
      end

and emit_call b ~cur ~exn c =
  (node b cur).n_term <- Tcall c;
  link_exn b cur exn;
  let nn = new_node b in
  link b cur nn;
  (nn, c.c_ret)

(* Fun.protect ~finally:f body: the body runs with its exceptional edges
   routed through a copy of the finally, and the finally runs again on the
   normal path.  Release calls inside the finally are therefore seen on
   every path out of the body. *)
and low_protect b ~cur ~exn ~loc args =
  let open Typedtree in
  let finally =
    List.find_map
      (fun (l, a) ->
        match (l, a) with
        | Asttypes.Labelled "finally", Some a -> Some a
        | _ -> None)
      args
  in
  let body =
    List.find_map
      (fun (l, a) ->
        match (l, a) with Asttypes.Nolabel, Some a -> Some a | _ -> None)
      args
  in
  let emit_finally ~cur ~exn =
    match finally with
    | Some { exp_desc = Texp_function { cases = [ c ]; _ }; _ } ->
        fst (low b ~cur ~exn c.c_rhs)
    | Some { exp_desc = Texp_ident (Path.Pident id, _, _); _ } ->
        fst
          (emit_call b ~cur ~exn
             {
               c_name = "";
               c_fn = Option.value (lookup_var b.ctx id) ~default:no_var;
               c_args = [];
               c_ret = fresh_var b;
               c_loc = loc;
             })
    | Some fe ->
        let cur, fv = low b ~cur ~exn fe in
        fst
          (emit_call b ~cur ~exn
             {
               c_name = "";
               c_fn = fv;
               c_args = [];
               c_ret = fresh_var b;
               c_loc = loc;
             })
    | None -> cur
  in
  (* exceptional path: finally then re-raise *)
  let fx = new_node b in
  let fx_end = emit_finally ~cur:fx ~exn in
  (node b fx_end).n_term <- Traise;
  link_exn b fx_end exn;
  (* body with exn routed through the finally copy *)
  let bend, bv =
    match body with
    | Some { exp_desc = Texp_function { cases = [ c ]; _ }; _ } ->
        low b ~cur ~exn:fx c.c_rhs
    | Some be ->
        (* opaque thunk: call it under the finally routing *)
        let cur, fv = low b ~cur ~exn:fx be in
        emit_call b ~cur ~exn:fx
          {
            c_name = "";
            c_fn = fv;
            c_args = [];
            c_ret = fresh_var b;
            c_loc = loc;
          }
    | None -> (cur, no_var)
  in
  (* normal path: finally, value flows through *)
  let nend = emit_finally ~cur:bend ~exn in
  (nend, bv)

(* match with value and exception cases; [Partial] adds a Match_failure
   edge from the dispatch point. *)
and low_match b ~cur ~exn ~loc scrut cases partial =
  let open Typedtree in
  let split = List.map (fun c -> (c, Typedtree.split_pattern c.c_lhs)) cases in
  let val_cases =
    List.filter_map (fun (c, (vp, _)) -> Option.map (fun p -> (c, p)) vp) split
  in
  let exc_cases =
    List.filter_map (fun (c, (_, ep)) -> Option.map (fun p -> (c, p)) ep) split
  in
  let hnode = if exc_cases <> [] then Some (new_node b) else None in
  let scrut_exn = match hnode with Some h -> h | None -> exn in
  let send, sv = low b ~cur ~exn:scrut_exn scrut in
  let d = new_node b in
  link b send d;
  let m = new_node b in
  let phi = fresh_var b in
  let lower_case ~from ~src (c, (pat : pattern)) =
    let bn = new_node b in
    link b from bn;
    bind_pattern b bn pat ~src;
    let bn' =
      match c.c_guard with
      | None -> bn
      | Some g -> fst (low b ~cur:bn ~exn g)
    in
    let bend, bv = low b ~cur:bn' ~exn c.c_rhs in
    if bv <> no_var then add_ev b bend (Bind { dst = phi; src = bv; loc });
    link b bend m
  in
  List.iter (lower_case ~from:d ~src:sv) val_cases;
  (match partial with
  | Partial ->
      let pn = new_node b in
      link b d pn;
      (node b pn).n_term <- Traise;
      link_exn b pn exn
  | Total -> ());
  (match hnode with
  | Some h ->
      List.iter (lower_case ~from:h ~src:no_var) exc_cases;
      (* unmatched exceptions re-raise — unless a guard-free catch-all
         case already swallows everything *)
      let catch_all =
        List.exists
          (fun (c, p) -> c.c_guard = None && irrefutable p)
          exc_cases
      in
      if not catch_all then begin
        let rr = new_node b in
        link b h rr;
        (node b rr).n_term <- Traise;
        link_exn b rr exn
      end
  | None -> ());
  (m, phi)

and low_try b ~cur ~exn ~loc body cases =
  let open Typedtree in
  let hnode = new_node b in
  let bend, bv = low b ~cur ~exn:hnode body in
  let m = new_node b in
  let phi = fresh_var b in
  if bv <> no_var then add_ev b bend (Bind { dst = phi; src = bv; loc });
  link b bend m;
  List.iter
    (fun c ->
      let bn = new_node b in
      link b hnode bn;
      bind_pattern b bn c.c_lhs ~src:no_var;
      let bn' =
        match c.c_guard with
        | None -> bn
        | Some g -> fst (low b ~cur:bn ~exn g)
      in
      let cend, cv = low b ~cur:bn' ~exn c.c_rhs in
      if cv <> no_var then add_ev b cend (Bind { dst = phi; src = cv; loc });
      link b cend m)
    cases;
  let catch_all =
    List.exists (fun c -> c.c_guard = None && irrefutable c.c_lhs) cases
  in
  if not catch_all then begin
    let rr = new_node b in
    link b hnode rr;
    (node b rr).n_term <- Traise;
    link_exn b rr exn
  end;
  (m, phi)

(* Multi-case function stage: dispatch the parameter through the cases. *)
and low_cases_on b ~cur ~exn ~loc ~src (cases : Typedtree.value Typedtree.case list)
    partial =
  let open Typedtree in
  let d = new_node b in
  link b cur d;
  let m = new_node b in
  let phi = fresh_var b in
  List.iter
    (fun c ->
      let bn = new_node b in
      link b d bn;
      bind_pattern b bn c.c_lhs ~src;
      let bn' =
        match c.c_guard with
        | None -> bn
        | Some g -> fst (low b ~cur:bn ~exn g)
      in
      let bend, bv = low b ~cur:bn' ~exn c.c_rhs in
      if bv <> no_var then add_ev b bend (Bind { dst = phi; src = bv; loc });
      link b bend m)
    cases;
  (match partial with
  | Partial ->
      let pn = new_node b in
      link b d pn;
      (node b pn).n_term <- Traise;
      link_exn b pn exn
  | Total -> ());
  (m, phi)

(* ------------------------------------------------------------------ *)
(* Function lowering                                                  *)
(* ------------------------------------------------------------------ *)

(* Peel the curried Texp_function chain, binding parameters; a multi-case
   final stage is lowered as a dispatch on its parameter. *)
and lower_function ctx ~fn_id (e : Typedtree.expression) : fn =
  let open Typedtree in
  let b = new_builder ctx fn_id in
  let entry = new_node b in
  let exit = new_node b in
  let exn_exit = new_node b in
  let rec consume cur e params =
    match e.exp_desc with
    | Texp_function { param; cases = [ { c_lhs; c_guard = None; c_rhs } ]; _ }
      when is_function c_rhs ->
        let p = bind_var b param (Ident.name param) in
        bind_pattern b cur c_lhs ~src:p;
        consume cur c_rhs (p :: params)
    | Texp_function { param; cases = [ { c_lhs; c_guard = None; c_rhs } ]; _ }
      ->
        let p = bind_var b param (Ident.name param) in
        bind_pattern b cur c_lhs ~src:p;
        let bend, bv = low b ~cur ~exn:exn_exit c_rhs in
        (List.rev (p :: params), bend, bv)
    | Texp_function { param; cases; partial; _ } ->
        let p = bind_var b param (Ident.name param) in
        let bend, bv =
          low_cases_on b ~cur ~exn:exn_exit ~loc:e.exp_loc ~src:p cases partial
        in
        (List.rev (p :: params), bend, bv)
    | _ ->
        let bend, bv = low b ~cur ~exn:exn_exit e in
        (List.rev params, bend, bv)
  in
  let params, bend, bv = consume entry e [] in
  if bv <> no_var then add_ev b bend (Return { v = bv; loc = e.exp_loc });
  link b bend exit;
  {
    fn_id;
    fn_module = ctx.modname;
    fn_params = params;
    fn_loc = e.exp_loc;
    fn_nodes = Vec.to_array b.nodes;
    fn_entry = entry;
    fn_exit = exit;
    fn_exn_exit = exn_exit;
    fn_vars = b.vars;
    fn_locals = b.locals;
  }

(* ------------------------------------------------------------------ *)
(* Module driver                                                      *)
(* ------------------------------------------------------------------ *)

let lower_module ~hooks ~modname (str : Typedtree.structure) : mod_cfg =
  let ctx =
    { hooks; modname; vars_tbl = Hashtbl.create 64; next = 1; subs = [] }
  in
  let toplevel = ref [] in
  let fns = ref [] in
  let rec walk prefix (str : Typedtree.structure) =
    let open Typedtree in
    (* pre-register every toplevel value name: recursion and forward calls
       resolve, and lambdas referencing them are not "captures" *)
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match vb.vb_pat.pat_desc with
                | Tpat_var (id, { txt; _ }) | Tpat_alias (_, id, { txt; _ }) ->
                    let v = intern_var ctx id in
                    if is_function vb.vb_expr then
                      toplevel := (v, prefix ^ txt) :: !toplevel
                | _ -> ())
              vbs
        | _ -> ())
      str.str_items;
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match (vb.vb_pat.pat_desc, is_function vb.vb_expr) with
                | ( (Tpat_var (_, { txt; _ }) | Tpat_alias (_, _, { txt; _ })),
                    true ) ->
                    let fn =
                      lower_function ctx ~fn_id:(prefix ^ txt) vb.vb_expr
                    in
                    fns := fn :: !fns
                | _ -> ())
              vbs
        | Tstr_module mb -> (
            let rec mexpr me =
              match me.mod_desc with
              | Tmod_structure s -> Some s
              | Tmod_constraint (me', _, _, _) -> mexpr me'
              | _ -> None
            in
            match (mb.mb_id, mexpr mb.mb_expr) with
            | Some id, Some s -> walk (prefix ^ Ident.name id ^ ".") s
            | _ -> ())
        | _ -> ())
      str.str_items
  in
  walk (modname ^ ".") str;
  {
    mc_module = modname;
    mc_fns = List.rev_append ctx.subs (List.rev !fns);
    mc_toplevel = !toplevel;
  }
