(* Configuration for treelint: a small TOML subset plus the typed view the
   rules consume.

   The parser covers exactly what treelint.toml needs — [dotted.section]
   headers, `key = value` entries with string / integer / boolean / string
   list values, quoted keys, and # comments — so the tool carries no
   third-party dependency.  Unknown sections and keys are preserved (and
   ignored by the typed view), which lets the config file document itself
   with future-rule stubs without breaking older binaries. *)

type value =
  | S of string
  | I of int
  | B of bool
  | L of string list

type entry = { section : string; key : string; value : value }

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- lexical helpers --- *)

let is_space c = c = ' ' || c = '\t'

let strip s =
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_space s.[!i] do incr i done;
  while !j >= !i && is_space s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

(* Drop a # comment, respecting double-quoted strings. *)
let drop_comment line =
  let buf = Buffer.create (String.length line) in
  let in_str = ref false in
  (try
     String.iter
       (fun c ->
         if c = '"' then in_str := not !in_str
         else if c = '#' && not !in_str then raise Exit;
         Buffer.add_char buf c)
       line
   with Exit -> ());
  Buffer.contents buf

let parse_string ~lineno s =
  let n = String.length s in
  if n < 2 || s.[0] <> '"' || s.[n - 1] <> '"' then
    fail "line %d: expected a double-quoted string, got %S" lineno s;
  String.sub s 1 (n - 2)

let parse_scalar ~lineno s =
  let s = strip s in
  if s = "" then fail "line %d: empty value" lineno
  else if s.[0] = '"' then S (parse_string ~lineno s)
  else if s = "true" then B true
  else if s = "false" then B false
  else
    match int_of_string_opt s with
    | Some i -> I i
    | None -> fail "line %d: unrecognized value %S" lineno s

(* Split a [ ... ] body on commas outside quotes. *)
let parse_list ~lineno body =
  let items = ref [] in
  let buf = Buffer.create 16 in
  let in_str = ref false in
  let flush () =
    let s = strip (Buffer.contents buf) in
    Buffer.clear buf;
    if s <> "" then items := parse_string ~lineno s :: !items
  in
  String.iter
    (fun c ->
      if c = '"' then begin
        in_str := not !in_str;
        Buffer.add_char buf c
      end
      else if c = ',' && not !in_str then flush ()
      else Buffer.add_char buf c)
    body;
  flush ();
  L (List.rev !items)

let parse_value ~lineno s =
  let s = strip s in
  let n = String.length s in
  if n >= 2 && s.[0] = '[' && s.[n - 1] = ']' then
    parse_list ~lineno (String.sub s 1 (n - 2))
  else parse_scalar ~lineno s

let parse_key ~lineno s =
  let s = strip s in
  if s = "" then fail "line %d: empty key" lineno
  else if s.[0] = '"' then parse_string ~lineno s
  else s

(* Find the [=] separating key from value, outside quotes. *)
let split_eq ~lineno line =
  let n = String.length line in
  let in_str = ref false in
  let pos = ref (-1) in
  (try
     for i = 0 to n - 1 do
       if line.[i] = '"' then in_str := not !in_str
       else if line.[i] = '=' && not !in_str then begin
         pos := i;
         raise Exit
       end
     done
   with Exit -> ());
  if !pos < 0 then fail "line %d: expected `key = value`, got %S" lineno line;
  (String.sub line 0 !pos, String.sub line (!pos + 1) (n - !pos - 1))

let parse_lines lines =
  let lines = Array.of_list lines in
  let n_lines = Array.length lines in
  let section = ref "" in
  let entries = ref [] in
  let i = ref 0 in
  while !i < n_lines do
    let lineno = !i + 1 in
    let line = strip (drop_comment lines.(!i)) in
    incr i;
    if line <> "" then
      if line.[0] = '[' then begin
        let n = String.length line in
        if line.[n - 1] <> ']' then fail "line %d: unterminated section" lineno;
        section := strip (String.sub line 1 (n - 2))
      end
      else begin
        let k, v = split_eq ~lineno line in
        (* A `[` that does not close on its own line opens a multi-line list:
           keep absorbing lines until one ends with `]`. *)
        let v = ref (strip v) in
        if String.length !v > 0 && !v.[0] = '[' then
          while
            (let s = !v in
             String.length s < 2 || s.[String.length s - 1] <> ']')
            &&
            if !i >= n_lines then fail "line %d: unterminated list" lineno
            else true
          do
            v := strip (!v ^ " " ^ strip (drop_comment lines.(!i)));
            incr i
          done;
        entries :=
          {
            section = !section;
            key = parse_key ~lineno k;
            value = parse_value ~lineno !v;
          }
          :: !entries
      end
  done;
  List.rev !entries

let parse_file path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | l -> go (l :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  parse_lines (go [])

(* --- typed view --- *)

(* One R7 resource class: "class: acq1, acq2 => rel1, rel2 [@ Mod1, Mod2]".
   Acquire/release are normalized member names (exact or "Module."/"_"
   prefix); the optional module list narrows where the class is enforced. *)
type r7_resource = {
  rc_class : string;
  rc_acquire : string list;
  rc_release : string list;
  rc_modules : string list;  (* [] = every module in the r7 layers *)
}

type t = {
  (* wrapper module name -> library key, e.g. "Tb_sim" -> "sim" *)
  libraries : (string * string) list;
  (* library key -> layer rank; references may only flow to strictly lower
     ranks (or within the same library) *)
  layers : (string * int) list;
  (* R1: members whose use is restricted (exact, or "Module." prefix) *)
  r1_page_members : string list;
  r1_page_allowed : string list;
  (* R1: charge/counter mutation discipline *)
  r1_charge_prefixes : string list;
  r1_charge_allowed : string list;
  (* R2: module -> allowed referrer tokens (library keys in lowercase,
     module names capitalized) *)
  r2_internal : (string * string list) list;
  (* R3 applies to these library keys (the engine under the fingerprint) *)
  r3_layers : string list;
  r3_banned : string list;
  r3_poly : string list;
  r3_mem_family : string list;
  r3_hashtbl_ops : string list;
  r4_roots : string list;
  r4_creators : string list;
  r5_banned : string list;
  r5_allowed : string list;
  (* R6: shard-failure exception constructors (raise or match sites) and the
     modules allowed to touch them *)
  r6_exceptions : string list;
  r6_allowed : string list;
  (* R7 pin/release pairing: dataflow over the library keys in r7_layers *)
  r7_layers : string list;
  r7_resources : r7_resource list;
  (* members assumed never to raise (charge helpers, pure leaf math): calls
     to anything else keep their exception edge live *)
  r7_total : string list;
  (* R8 RNG-stream taint *)
  r8_layers : string list;
  (* stream name -> modules allowed to draw from it; the first entry is the
     owner (the module whose Rng.create / rng field defines the stream) *)
  r8_streams : (string * string list) list;
  (* members a tainted value must not reach as an argument *)
  r8_sinks : string list;
  (* draw families, default ["Rng."] *)
  r8_draws : string list;
  (* seeded summaries: "Module.fn" returns a value tainted by stream *)
  r8_tainted : (string * string) list;
  (* R9 charge/effect ordering: inside r9_modules, the charge member of a
     pair must dominate every call to its effect member *)
  r9_modules : string list;
  r9_pairs : (string * string) list;  (* charge member, effect member *)
  (* rule id -> "error" | "warning" | "note" (default error) *)
  severity : (string * string) list;
  (* "RULE Module [offender]" -> reason (must be non-empty) *)
  allow : (string * string) list;
}

let strings = function
  | L l -> l
  | S s -> [ s ]
  | _ -> fail "expected a string list"

let section_assoc entries name =
  List.filter_map
    (fun e -> if String.equal e.section name then Some (e.key, e.value) else None)
    entries

let string_list entries section key default =
  match List.assoc_opt key (section_assoc entries section) with
  | Some v -> strings v
  | None -> default

(* Split [s] once on the first occurrence of [sep]; None when absent. *)
let split_once sep s =
  let n = String.length s and m = String.length sep in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sep then
      Some (String.sub s 0 i, String.sub s (i + m) (n - i - m))
    else go (i + 1)
  in
  go 0

let comma_names s =
  String.split_on_char ',' s |> List.map strip |> List.filter (( <> ) "")

let parse_resource spec =
  match split_once ":" spec with
  | None -> fail "r7 resource %S: expected \"class: acq => rel [@ mods]\"" spec
  | Some (cls, rest) -> (
      match split_once "=>" rest with
      | None -> fail "r7 resource %S: missing \"=>\" release list" spec
      | Some (acq, rel_mods) ->
          let rel, mods =
            match split_once "@" rel_mods with
            | None -> (rel_mods, "")
            | Some (r, m) -> (r, m)
          in
          let cls = strip cls in
          if cls = "" then fail "r7 resource %S: empty class name" spec;
          {
            rc_class = cls;
            rc_acquire = comma_names acq;
            rc_release = comma_names rel;
            rc_modules = comma_names mods;
          })

let parse_pair what spec =
  match split_once "=>" spec with
  | Some (a, b) when strip a <> "" && strip b <> "" -> (strip a, strip b)
  | _ -> fail "%s %S: expected \"lhs => rhs\"" what spec

let parse_tainted spec =
  match split_once "=" spec with
  | Some (name, stream) when strip name <> "" && strip stream <> "" ->
      (strip name, strip stream)
  | _ -> fail "r8 tainted_returns %S: expected \"Module.fn = stream\"" spec

let of_entries entries =
  let libraries =
    List.map
      (fun (k, v) ->
        match v with
        | S s -> (k, s)
        | _ -> fail "[libraries] values must be strings")
      (section_assoc entries "libraries")
  in
  let layers =
    List.map
      (fun (k, v) ->
        match v with
        | I i -> (k, i)
        | _ -> fail "[layers] values must be integers")
      (section_assoc entries "layers")
  in
  let r2_internal =
    List.map
      (fun (k, v) -> (k, strings v))
      (section_assoc entries "rules.r2.internal")
  in
  let allow =
    List.map
      (fun (k, v) ->
        match v with
        | S reason ->
            if String.equal (strip reason) "" then
              fail "[allow] entry %S has an empty reason — every exception \
                    must say why it is intentional" k
            else (k, reason)
        | _ -> fail "[allow] values must be reason strings")
      (section_assoc entries "allow")
  in
  {
    libraries;
    layers;
    r1_page_members = string_list entries "rules.r1" "page_access_members" [];
    r1_page_allowed = string_list entries "rules.r1" "page_access_allowed" [];
    r1_charge_prefixes = string_list entries "rules.r1" "charge_prefixes" [];
    r1_charge_allowed = string_list entries "rules.r1" "charge_allowed" [];
    r2_internal;
    r3_layers = string_list entries "rules.r3" "layers" [];
    r3_banned = string_list entries "rules.r3" "banned" [];
    r3_poly = string_list entries "rules.r3" "poly_compare" [];
    r3_mem_family = string_list entries "rules.r3" "mem_family" [];
    r3_hashtbl_ops = string_list entries "rules.r3" "hashtbl_ops" [];
    r4_roots = string_list entries "rules.r4" "roots" [];
    r4_creators = string_list entries "rules.r4" "creators" [];
    r5_banned = string_list entries "rules.r5" "banned" [];
    r5_allowed = string_list entries "rules.r5" "allowed" [];
    r6_exceptions = string_list entries "rules.r6" "exceptions" [];
    r6_allowed = string_list entries "rules.r6" "allowed" [];
    r7_layers = string_list entries "rules.r7" "layers" [];
    r7_resources =
      List.map parse_resource (string_list entries "rules.r7" "resources" []);
    r7_total = string_list entries "rules.r7" "total" [];
    r8_layers = string_list entries "rules.r8" "layers" [];
    r8_streams =
      List.map
        (fun (k, v) -> (k, strings v))
        (section_assoc entries "rules.r8.streams");
    r8_sinks = string_list entries "rules.r8" "sinks" [];
    r8_draws = string_list entries "rules.r8" "draws" [ "Rng." ];
    r8_tainted =
      List.map parse_tainted
        (string_list entries "rules.r8" "tainted_returns" []);
    r9_modules = string_list entries "rules.r9" "modules" [];
    r9_pairs =
      List.map (parse_pair "r9 pair")
        (string_list entries "rules.r9" "pairs" []);
    severity =
      List.map
        (fun (k, v) ->
          match v with
          | S s when List.mem s [ "error"; "warning"; "note" ] -> (k, s)
          | _ -> fail "[severity] values must be error/warning/note")
        (section_assoc entries "severity");
    allow;
  }

let load path = of_entries (parse_file path)

(* [matches_member pats name]: a pattern ending in [._] is a prefix, anything
   else must match exactly — "Disk.load_page" is one member, "Buffer_pool."
   is the whole module, "Sim.charge_" is a function family. *)
let matches_member patterns name =
  List.exists
    (fun p ->
      let n = String.length p in
      if n > 0 && (p.[n - 1] = '.' || p.[n - 1] = '_') then
        String.length name >= n && String.equal (String.sub name 0 n) p
      else String.equal p name)
    patterns
