(* Interprocedural dataflow rules over the CFGs: R7 pin/release pairing,
   R8 RNG-stream taint, R9 charge/effect ordering.

   Per-function summaries propagate facts across calls:
   - [s_may_raise]    the exceptional exit is reachable (starts false and
                      grows; config [total] members never raise)
   - [s_returns]      resource classes carried by the result — a helper
                      that acquires and escapes a handle upward becomes an
                      acquire site for its callers
   - [s_releases]     classes discharged when the fn is called with an
                      aliased argument (may-release: a conditional release
                      in a helper counts, which is forgiving, not strict)
   - [s_acquires]     token classes (acquire with an unused unit-ish
                      result, e.g. Sim.claim_bytes) still live at the
                      normal exit: the obligation transfers to the caller
   - [s_taint]/[s_rng] R8: the result is a drawn value / an RNG of a stream
   - [s_charges]      R9: charges guaranteed on every normal return
   - [s_ctx]          R9: intersection of caller states at every resolved
                      call site, used as the entry state of local helpers

   All lattices are finite and grow monotonically; the fixpoint driver is
   round-capped as a backstop. *)

module Cfg = Treelint_cfg
module Cg = Treelint_callgraph
module Config = Treelint_config
module Diag = Treelint_diag
module IS = Set.Make (Int)
module SS = Set.Make (String)

type summary = {
  mutable s_may_raise : bool;
  mutable s_returns : SS.t;
  mutable s_releases : SS.t;
  mutable s_acquires : SS.t;
  mutable s_taint : (string * Location.t) option;
  mutable s_rng : string option;
  mutable s_charges : SS.t;
  mutable s_ctx : SS.t option;
}

let fresh_summary () =
  {
    s_may_raise = false;
    s_returns = SS.empty;
    s_releases = SS.empty;
    s_acquires = SS.empty;
    s_taint = None;
    s_rng = None;
    s_charges = SS.empty;
    s_ctx = None;
  }

type env = {
  config : Config.t;
  cg : Cg.t;
  summaries : (string, summary) Hashtbl.t;
  mod_lib : string -> string option;  (* module name -> library key *)
  mutable diags : Diag.t list;  (* only filled during the collect pass *)
  mutable collecting : bool;
  seen : (string, unit) Hashtbl.t;  (* diag dedup across collect passes *)
}

let summary env fn_id =
  match Hashtbl.find_opt env.summaries fn_id with
  | Some s -> s
  | None ->
      let s = fresh_summary () in
      Hashtbl.replace env.summaries fn_id s;
      s

let severity_of env rule =
  match List.assoc_opt rule env.config.Config.severity with
  | Some s -> Option.value (Diag.severity_of_string s) ~default:Diag.Error
  | None -> Diag.Error

let step_of loc note =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_fname, p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol,
   note)

let emit env ~rule ~loc ~modname ~offender ~message ~trace =
  if env.collecting then begin
    let p = loc.Location.loc_start in
    let key =
      Printf.sprintf "%s|%s|%d|%d|%s" rule p.Lexing.pos_fname
        p.Lexing.pos_lnum p.Lexing.pos_cnum offender
    in
    if not (Hashtbl.mem env.seen key) then begin
      Hashtbl.replace env.seen key ();
      env.diags <-
        Diag.make ~severity:(severity_of env rule) ~trace ~rule ~loc ~modname
          ~offender ~message ()
        :: env.diags
    end
  end

let in_layers env layers modname =
  match env.mod_lib modname with
  | Some lib -> List.mem lib layers
  | None -> false

let resolve_summary env fn c =
  match Cg.resolve env.cg fn c with
  | Some id -> Some (summary env id)
  | None -> None

(* Does this call keep its exception edge?  Config [total] members never
   raise; resolved callees defer to their computed summary; everything
   else is assumed to raise. *)
let may_raise env fn (c : Cfg.call) =
  if c.Cfg.c_name <> "" && Config.matches_member env.config.Config.r7_total
       c.Cfg.c_name
  then false
  else
    match resolve_summary env fn c with
    | Some s -> s.s_may_raise
    | None -> true

(* ------------------------------------------------------------------ *)
(* R7: pin/release pairing                                            *)
(* ------------------------------------------------------------------ *)

type oblig = {
  o_id : int;
  o_class : string;
  o_token : bool;  (* keyed by class, not by the returned value *)
  o_loc : Location.t;
  o_node : int;
}

(* Variables whose value is observed somewhere: an acquire whose result is
   never observed is a token obligation (claim-style), released by class. *)
let used_vars (fn : Cfg.fn) =
  let u = ref IS.empty in
  Array.iter
    (fun n ->
      List.iter
        (function
          | Cfg.Bind { src; _ } -> u := IS.add src !u
          | Cfg.Escape { v; _ } -> u := IS.add v !u
          | Cfg.Return { v; _ } -> u := IS.add v !u
          | Cfg.Field_get _ -> ())
        n.Cfg.n_ev;
      match n.Cfg.n_term with
      | Cfg.Tcall c ->
          List.iter (fun v -> u := IS.add v !u) c.Cfg.c_args;
          if c.Cfg.c_fn >= 0 then u := IS.add c.Cfg.c_fn !u
      | _ -> ())
    fn.Cfg.fn_nodes;
  !u

let class_allowed_in rc modname =
  rc.Config.rc_modules = [] || List.mem modname rc.Config.rc_modules

(* Classes acquired by a call: config acquire members, plus resolved-callee
   summaries (escaping helpers and token transfers). *)
let acquire_classes env fn (c : Cfg.call) =
  let modname = fn.Cfg.fn_module in
  let by_name =
    List.filter_map
      (fun rc ->
        if
          Config.matches_member rc.Config.rc_acquire c.Cfg.c_name
          && class_allowed_in rc modname
        then Some (rc.Config.rc_class, false)
        else None)
      env.config.Config.r7_resources
  in
  let by_summary =
    match resolve_summary env fn c with
    | None -> []
    | Some s ->
        SS.fold (fun cls acc -> (cls, false) :: acc) s.s_returns []
        @ SS.fold (fun cls acc -> (cls, true) :: acc) s.s_acquires []
  in
  let scoped =
    List.filter
      (fun (cls, _) ->
        match
          List.find_opt
            (fun rc -> rc.Config.rc_class = cls)
            env.config.Config.r7_resources
        with
        | Some rc -> class_allowed_in rc modname
        | None -> false)
      by_summary
  in
  by_name @ scoped

(* Classes a call releases: config release members plus callee summary. *)
let release_classes env fn (c : Cfg.call) =
  let by_name =
    List.filter_map
      (fun rc ->
        if Config.matches_member rc.Config.rc_release c.Cfg.c_name then
          Some rc.Config.rc_class
        else None)
      env.config.Config.r7_resources
  in
  let by_summary =
    match resolve_summary env fn c with
    | None -> []
    | Some s -> SS.elements s.s_releases
  in
  List.sort_uniq String.compare (by_name @ by_summary)

(* State: live obligations with their alias sets, keyed by obligation id. *)
type r7_state = (int * IS.t) list

let st_join (a : r7_state) (b : r7_state) : r7_state =
  let rec go a b =
    match (a, b) with
    | [], r | r, [] -> r
    | (ia, sa) :: ta, (ib, sb) :: tb ->
        if ia = ib then (ia, IS.union sa sb) :: go ta tb
        else if ia < ib then (ia, sa) :: go ta ((ib, sb) :: tb)
        else (ib, sb) :: go ((ia, sa) :: ta) tb
  in
  go a b

let st_equal a b =
  List.length a = List.length b
  && List.for_all2 (fun (i, s) (j, t) -> i = j && IS.equal s t) a b

let find_var_name (fn : Cfg.fn) aliases =
  let named =
    List.filter (fun (v, _) -> IS.mem v aliases) fn.Cfg.fn_vars
  in
  match List.sort (fun (a, _) (b, _) -> Int.compare a b) named with
  | (_, n) :: _ -> Some n
  | [] -> None

(* One round of R7 over [fn].  Updates the summary; emits diagnostics when
   [env.collecting].  Returns true when the summary changed. *)
let analyze_r7 env (fn : Cfg.fn) =
  let s = summary env fn.Cfg.fn_id in
  let in_scope = in_layers env env.config.Config.r7_layers fn.Cfg.fn_module in
  let nn = Array.length fn.Cfg.fn_nodes in
  let used = if in_scope then used_vars fn else IS.empty in
  let param_closure =
    (* vars reachable from parameters through binds, flow-insensitive *)
    let cl = ref (IS.of_list fn.Cfg.fn_params) in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun n ->
          List.iter
            (function
              | Cfg.Bind { dst; src; _ }
                when IS.mem src !cl && not (IS.mem dst !cl) ->
                  cl := IS.add dst !cl;
                  changed := true
              | _ -> ())
            n.Cfg.n_ev)
        fn.Cfg.fn_nodes
    done;
    !cl
  in
  (* obligation table: one per (acquiring node, class) *)
  let obligs = ref [] in
  if in_scope then
    Array.iteri
      (fun i n ->
        match n.Cfg.n_term with
        | Cfg.Tcall c ->
            List.iter
              (fun (cls, forced_token) ->
                let o_token = forced_token || not (IS.mem c.Cfg.c_ret used) in
                obligs :=
                  {
                    o_id = List.length !obligs;
                    o_class = cls;
                    o_token;
                    o_loc = c.Cfg.c_loc;
                    o_node = i;
                  }
                  :: !obligs)
              (acquire_classes env fn c)
        | _ -> ())
      fn.Cfg.fn_nodes;
  let obligs = Array.of_list (List.rev !obligs) in
  let ost = Array.make nn None in  (* IN states *)
  let reached = Array.make nn false in
  let returns = ref SS.empty in
  let releases = ref SS.empty in
  let propagate j st =
    let st' =
      match ost.(j) with None -> st | Some prev -> st_join prev st
    in
    let same = (match ost.(j) with Some p -> st_equal p st' | None -> false) in
    if not same || not reached.(j) then begin
      ost.(j) <- Some st';
      reached.(j) <- true;
      true
    end
    else false
  in
  let work = Queue.create () in
  ignore (propagate fn.Cfg.fn_entry []);
  Queue.push fn.Cfg.fn_entry work;
  let guard = ref 0 in
  while not (Queue.is_empty work) && !guard < 200_000 do
    incr guard;
    let i = Queue.pop work in
    let n = fn.Cfg.fn_nodes.(i) in
    let st = ref (Option.value ost.(i) ~default:[]) in
    (* events, oldest first *)
    List.iter
      (fun ev ->
        match ev with
        | Cfg.Bind { dst; src; _ } ->
            st :=
              List.map
                (fun (o, al) ->
                  if IS.mem src al then (o, IS.add dst al) else (o, al))
                !st
        | Cfg.Escape { v; _ } ->
            st := List.filter (fun (_, al) -> not (IS.mem v al)) !st
        | Cfg.Return { v; _ } ->
            let ret_obs, live =
              List.partition (fun (_, al) -> IS.mem v al) !st
            in
            List.iter
              (fun (o, _) -> returns := SS.add obligs.(o).o_class !returns)
              ret_obs;
            st := live
        | Cfg.Field_get _ -> ())
      (List.rev n.Cfg.n_ev);
    let push k st' = if propagate k st' then Queue.push k work in
    (match n.Cfg.n_term with
    | Cfg.Fallthrough -> List.iter (fun j -> push j !st) n.Cfg.n_succ
    | Cfg.Traise -> List.iter (fun j -> push j !st) n.Cfg.n_exn
    | Cfg.Tcall c ->
        (* releases discharge at the call, on both outcomes *)
        let rel = release_classes env fn c in
        List.iter
          (fun cls ->
            let of_class =
              List.filter (fun (o, _) -> obligs.(o).o_class = cls) !st
            in
            let hits =
              List.filter
                (fun (_, al) ->
                  List.exists (fun a -> IS.mem a al) c.Cfg.c_args)
                of_class
            in
            let victims = if hits <> [] then hits else of_class in
            (* a release reached through a parameter is part of this fn's
               contract: callers with an aliased arg discharge too *)
            if
              List.exists
                (fun (_, al) ->
                  IS.exists (fun a -> IS.mem a param_closure) al)
                victims
              || List.exists (fun a -> IS.mem a param_closure) c.Cfg.c_args
            then releases := SS.add cls !releases;
            st :=
              List.filter
                (fun (o, _) -> not (List.memq o (List.map fst victims)))
                !st)
          rel;
        (* parameter releases with no live obligation still count *)
        if rel <> [] && List.exists (fun a -> IS.mem a param_closure) c.Cfg.c_args
        then List.iter (fun cls -> releases := SS.add cls !releases) rel;
        let st_exn = !st in
        let acq = if in_scope then acquire_classes env fn c else [] in
        let st_norm =
          List.fold_left
            (fun acc (cls, forced_token) ->
              match
                List.find_opt
                  (fun o -> o.o_node = i && o.o_class = cls)
                  (Array.to_list obligs)
              with
              | Some o ->
                  ignore forced_token;
                  st_join acc [ (o.o_id, IS.singleton c.Cfg.c_ret) ]
              | None -> acc)
            !st acq
        in
        List.iter (fun j -> push j st_norm) n.Cfg.n_succ;
        if may_raise env fn c then
          List.iter (fun j -> push j st_exn) n.Cfg.n_exn)
  done;
  (* summary updates *)
  let changed = ref false in
  let set_bool cur v setter = if v && not cur then (setter (); changed := true) in
  set_bool s.s_may_raise reached.(fn.Cfg.fn_exn_exit) (fun () ->
      s.s_may_raise <- true);
  if not (SS.subset !returns s.s_returns) then begin
    s.s_returns <- SS.union s.s_returns !returns;
    changed := true
  end;
  if not (SS.subset !releases s.s_releases) then begin
    s.s_releases <- SS.union s.s_releases !releases;
    changed := true
  end;
  let exit_state = Option.value ost.(fn.Cfg.fn_exit) ~default:[] in
  let tokens_at_exit =
    List.filter_map
      (fun (o, _) -> if obligs.(o).o_token then Some obligs.(o).o_class else None)
      exit_state
    |> SS.of_list
  in
  if not (SS.subset tokens_at_exit s.s_acquires) then begin
    s.s_acquires <- SS.union s.s_acquires tokens_at_exit;
    changed := true
  end;
  (* diagnostics *)
  if env.collecting && in_scope then begin
    let leak o ~exn_path ~aliases =
      let name =
        if o.o_token then o.o_class
        else
          match find_var_name fn aliases with
          | Some n -> Printf.sprintf "%s:%s" o.o_class n
          | None -> o.o_class
      in
      let path_kind = if exn_path then "an exceptional" else "a normal" in
      let trace = ref [ step_of o.o_loc (Printf.sprintf "%s acquired here" name) ] in
      if exn_path then begin
        (* first raising point past the acquire with the obligation live *)
        let found = ref false in
        Array.iteri
          (fun i n ->
            if (not !found) && i <> o.o_node && reached.(i) then
              match ost.(i) with
              | Some st when List.mem_assoc o.o_id st -> (
                  match n.Cfg.n_term with
                  | Cfg.Tcall c when may_raise env fn c && n.Cfg.n_exn <> [] ->
                      found := true;
                      let what =
                        if c.Cfg.c_name = "" then "a local call"
                        else "`" ^ c.Cfg.c_name ^ "`"
                      in
                      trace :=
                        step_of c.Cfg.c_loc
                          (Printf.sprintf
                             "%s may raise here with no release on the \
                              unwind path"
                             what)
                        :: !trace
                  | Cfg.Traise ->
                      found := true;
                      trace :=
                        step_of fn.Cfg.fn_loc "raise here skips the release"
                        :: !trace
                  | _ -> ())
              | _ -> ())
          fn.Cfg.fn_nodes
      end;
      trace :=
        step_of fn.Cfg.fn_loc
          (Printf.sprintf "%s exits on %s path with %s still held"
             fn.Cfg.fn_id path_kind name)
        :: !trace;
      emit env ~rule:"R7" ~loc:o.o_loc ~modname:fn.Cfg.fn_module
        ~offender:name
        ~message:
          (Printf.sprintf
             "%s is acquired in %s but not released on %s path" name
             fn.Cfg.fn_id path_kind)
        ~trace:(List.rev !trace)
    in
    (match ost.(fn.Cfg.fn_exn_exit) with
    | Some st ->
        List.iter (fun (o, al) -> leak obligs.(o) ~exn_path:true ~aliases:al) st
    | None -> ());
    match ost.(fn.Cfg.fn_exit) with
    | Some st ->
        List.iter
          (fun (o, al) ->
            if not obligs.(o).o_token then
              leak obligs.(o) ~exn_path:false ~aliases:al)
          st
    | None -> ()
  end;
  !changed

(* ------------------------------------------------------------------ *)
(* R8: RNG-stream taint                                               *)
(* ------------------------------------------------------------------ *)

let own_stream env modname =
  List.find_map
    (fun (stream, allowed) ->
      match allowed with
      | owner :: _ when owner = modname -> Some stream
      | _ -> None)
    env.config.Config.r8_streams

let stream_allows env stream modname =
  match List.assoc_opt stream env.config.Config.r8_streams with
  | Some allowed -> List.mem modname allowed
  | None -> false

let is_create_or_copy name =
  let suffix s suf =
    let n = String.length s and m = String.length suf in
    n >= m && String.sub s (n - m) m = suf
  in
  suffix name ".create" || suffix name ".copy"

type taint = {
  mutable t_rng : string option;  (* this value IS an RNG of stream *)
  mutable t_val : (string * Location.t) option;  (* drawn from stream at *)
}

let analyze_r8 env (fn : Cfg.fn) =
  if not (in_layers env env.config.Config.r8_layers fn.Cfg.fn_module) then false
  else begin
    let s = summary env fn.Cfg.fn_id in
    let modname = fn.Cfg.fn_module in
    let tbl : (int, taint) Hashtbl.t = Hashtbl.create 32 in
    let taint v =
      match Hashtbl.find_opt tbl v with
      | Some t -> t
      | None ->
          let t = { t_rng = None; t_val = None } in
          Hashtbl.replace tbl v t;
          t
    in
    let changed_inner = ref true in
    let ret_taint = ref None in
    let ret_rng = ref None in
    let join_val t v =
      match (t.t_val, v) with
      | None, Some _ ->
          t.t_val <- v;
          changed_inner := true
      | _ -> ()
    in
    let join_rng t r =
      match (t.t_rng, r) with
      | None, Some _ ->
          t.t_rng <- r;
          changed_inner := true
      | _ -> ()
    in
    let violations = ref [] in
    let violate ~loc ~offender ~message ~trace =
      violations := (loc, offender, message, trace) :: !violations
    in
    let rounds = ref 0 in
    while !changed_inner && !rounds < 20 do
      changed_inner := false;
      incr rounds;
      violations := [];
      Array.iter
        (fun n ->
          List.iter
            (fun ev ->
              match ev with
              | Cfg.Bind { dst; src; _ } ->
                  if src >= 0 || Hashtbl.mem tbl src then begin
                    let ts = taint src and td = taint dst in
                    join_val td ts.t_val;
                    join_rng td ts.t_rng
                  end
              | Cfg.Field_get { dst; owner; is_rng; _ } ->
                  if is_rng then
                    join_rng (taint dst) (own_stream env owner)
              | Cfg.Escape _ | Cfg.Return _ -> ())
            (List.rev n.Cfg.n_ev);
          (match n.Cfg.n_term with
          | Cfg.Tcall c ->
              let name = c.Cfg.c_name in
              let arg_taints = List.map (fun v -> taint v) c.Cfg.c_args in
              let rt = taint c.Cfg.c_ret in
              (* sinks: a foreign draw must not feed a charge/placement *)
              if
                name <> ""
                && Config.matches_member env.config.Config.r8_sinks name
              then
                List.iter
                  (fun t ->
                    match t.t_val with
                    | Some (stream, origin)
                      when not (stream_allows env stream modname) ->
                        violate ~loc:c.Cfg.c_loc
                          ~offender:(stream ^ "->" ^ name)
                          ~message:
                            (Printf.sprintf
                               "value drawn from RNG stream %S reaches %s \
                                in %s, outside the stream's modules"
                               stream name modname)
                          ~trace:
                            [
                              step_of origin
                                (Printf.sprintf "drawn from stream %S here"
                                   stream);
                              step_of c.Cfg.c_loc
                                ("flows into " ^ name ^ " here");
                            ]
                    | _ -> ())
                  arg_taints;
              if
                name <> ""
                && Config.matches_member env.config.Config.r8_draws name
              then begin
                if is_create_or_copy name then begin
                  match own_stream env modname with
                  | Some stream -> join_rng rt (Some stream)
                  | None ->
                      violate ~loc:c.Cfg.c_loc ~offender:("?@" ^ name)
                        ~message:
                          (Printf.sprintf
                             "%s creates an RNG in %s, which owns no \
                              registered stream"
                             name modname)
                        ~trace:[ step_of c.Cfg.c_loc "created here" ]
                end
                else begin
                  (* a draw: attribute the stream via the rng argument *)
                  let stream =
                    match
                      List.find_map (fun t -> t.t_rng) arg_taints
                    with
                    | Some s -> Some s
                    | None -> own_stream env modname
                  in
                  match stream with
                  | None -> ()  (* unattributable: stay quiet *)
                  | Some stream ->
                      if not (stream_allows env stream modname) then
                        violate ~loc:c.Cfg.c_loc
                          ~offender:(stream ^ "@" ^ name)
                          ~message:
                            (Printf.sprintf
                               "%s draws from RNG stream %S inside %s, \
                                which is not among the stream's modules"
                               name stream modname)
                          ~trace:
                            [ step_of c.Cfg.c_loc "foreign draw here" ];
                      join_val rt (Some (stream, c.Cfg.c_loc));
                      (* cross-stream state pollution via arguments *)
                      List.iter
                        (fun t ->
                          match t.t_val with
                          | Some (s', origin)
                            when s' <> stream
                                 && not (stream_allows env s' modname) ->
                              violate ~loc:c.Cfg.c_loc
                                ~offender:(s' ^ "->" ^ stream)
                                ~message:
                                  (Printf.sprintf
                                     "stream %S state fed by a value drawn \
                                      from stream %S in %s"
                                     stream s' modname)
                                ~trace:
                                  [
                                    step_of origin
                                      (Printf.sprintf
                                         "drawn from stream %S here" s');
                                    step_of c.Cfg.c_loc
                                      (Printf.sprintf
                                         "feeds a %S draw here" stream);
                                  ]
                          | _ -> ())
                        arg_taints
                end
              end
              else begin
                (* config-seeded and computed summaries *)
                (match
                   List.find_opt
                     (fun (m, _) -> m = name)
                     env.config.Config.r8_tainted
                 with
                | Some (_, stream) ->
                    join_val rt (Some (stream, c.Cfg.c_loc))
                | None -> ());
                (match resolve_summary env fn c with
                | Some cs ->
                    join_val rt cs.s_taint;
                    join_rng rt cs.s_rng
                | None ->
                    (* unknown call: taint flows through arguments *)
                    join_val rt
                      (List.find_map (fun t -> t.t_val) arg_taints))
              end
          | _ -> ());
          (* returns feed the summary *)
          List.iter
            (function
              | Cfg.Return { v; _ } ->
                  let t = taint v in
                  (match (t.t_val, !ret_taint) with
                  | Some tv, None -> ret_taint := Some tv
                  | _ -> ());
                  (match (t.t_rng, !ret_rng) with
                  | Some r, None -> ret_rng := Some r
                  | _ -> ())
              | _ -> ())
            n.Cfg.n_ev)
        fn.Cfg.fn_nodes
    done;
    let changed = ref false in
    (match (s.s_taint, !ret_taint) with
    | None, Some tv ->
        s.s_taint <- Some tv;
        changed := true
    | _ -> ());
    (match (s.s_rng, !ret_rng) with
    | None, Some r ->
        s.s_rng <- Some r;
        changed := true
    | _ -> ());
    if env.collecting then
      List.iter
        (fun (loc, offender, message, trace) ->
          emit env ~rule:"R8" ~loc ~modname:fn.Cfg.fn_module ~offender
            ~message ~trace)
        (List.rev !violations);
    !changed
  end

(* ------------------------------------------------------------------ *)
(* R9: charge/effect ordering                                         *)
(* ------------------------------------------------------------------ *)

let analyze_r9 env (fn : Cfg.fn) =
  if not (List.mem fn.Cfg.fn_module env.config.Config.r9_modules) then false
  else begin
    let s = summary env fn.Cfg.fn_id in
    let pairs = env.config.Config.r9_pairs in
    let nn = Array.length fn.Cfg.fn_nodes in
    let ins : SS.t option array = Array.make nn None in
    let entry_state = Option.value s.s_ctx ~default:SS.empty in
    let propagate j st =
      match ins.(j) with
      | None ->
          ins.(j) <- Some st;
          true
      | Some prev ->
          let st' = SS.inter prev st in
          if SS.equal st' prev then false
          else begin
            ins.(j) <- Some st';
            true
          end
    in
    let work = Queue.create () in
    ignore (propagate fn.Cfg.fn_entry entry_state);
    Queue.push fn.Cfg.fn_entry work;
    let guard = ref 0 in
    while not (Queue.is_empty work) && !guard < 200_000 do
      incr guard;
      let i = Queue.pop work in
      let n = fn.Cfg.fn_nodes.(i) in
      let st = Option.value ins.(i) ~default:SS.empty in
      let push j st' = if propagate j st' then Queue.push j work in
      match n.Cfg.n_term with
      | Cfg.Fallthrough -> List.iter (fun j -> push j st) n.Cfg.n_succ
      | Cfg.Traise -> List.iter (fun j -> push j st) n.Cfg.n_exn
      | Cfg.Tcall c ->
          let name = c.Cfg.c_name in
          (* effect check precedes this call's own contribution *)
          if env.collecting then
            List.iter
              (fun (charge, effect) ->
                if
                  Config.matches_member [ effect ] name
                  && not (SS.mem charge st)
                then
                  emit env ~rule:"R9" ~loc:c.Cfg.c_loc
                    ~modname:fn.Cfg.fn_module ~offender:name
                    ~message:
                      (Printf.sprintf
                         "%s reached in %s on a path where %s has not been \
                          charged"
                         name fn.Cfg.fn_id charge)
                    ~trace:
                      [
                        step_of c.Cfg.c_loc
                          (Printf.sprintf
                             "effect %s here; no dominating %s on some \
                              path from the function entry"
                             name charge);
                      ])
              pairs;
          let st' =
            List.fold_left
              (fun acc (charge, _) ->
                if Config.matches_member [ charge ] name then SS.add charge acc
                else acc)
              st pairs
          in
          let st' =
            match resolve_summary env fn c with
            | Some cs -> SS.union st' cs.s_charges
            | None -> st'
          in
          (* context summaries for local helpers *)
          (match Cg.resolve env.cg fn c with
          | Some callee_id ->
              let cs = summary env callee_id in
              let ctx' =
                match cs.s_ctx with
                | None -> Some st
                | Some prev -> Some (SS.inter prev st)
              in
              if cs.s_ctx <> ctx' then cs.s_ctx <- ctx'
          | None -> ());
          List.iter (fun j -> push j st') n.Cfg.n_succ;
          if may_raise env fn c then List.iter (fun j -> push j st) n.Cfg.n_exn
    done;
    let exit_charges = Option.value ins.(fn.Cfg.fn_exit) ~default:SS.empty in
    if not (SS.subset exit_charges s.s_charges) then begin
      s.s_charges <- SS.union s.s_charges exit_charges;
      true
    end
    else false
  end

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let run ~config ~(mods : Cfg.mod_cfg list) ~mod_lib : Diag.t list =
  let cg = Cg.build mods in
  let env =
    {
      config;
      cg;
      summaries = Hashtbl.create 256;
      mod_lib;
      diags = [];
      collecting = false;
      seen = Hashtbl.create 64;
    }
  in
  let analyze fn =
    let c7 = analyze_r7 env fn in
    let c8 = analyze_r8 env fn in
    let c9 = analyze_r9 env fn in
    c7 || c8 || c9
  in
  Cg.fixpoint cg ~max_rounds:16 analyze;
  env.collecting <- true;
  List.iter (fun fn -> ignore (analyze fn)) cg.Cg.order;
  List.rev env.diags
