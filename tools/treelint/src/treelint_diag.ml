(* Diagnostics: what a rule found, where, and what became of it.

   A diagnostic's fingerprint — "RULE Module offender" — deliberately
   excludes source locations so that allowlist and baseline entries survive
   unrelated edits to the flagged file. *)

type status =
  | Violation
  | Allowlisted of string  (* the configured reason *)
  | Baselined

type t = {
  rule : string;     (* "R1" .. "R5" *)
  file : string;     (* workspace-relative source path *)
  line : int;
  col : int;
  modname : string;  (* unprefixed module name, e.g. "Exec" *)
  offender : string; (* normalized reference, e.g. "Disk.load_page" or "=@list" *)
  message : string;
  mutable status : status;
}

let make ~rule ~loc ~modname ~offender ~message =
  let pos = loc.Location.loc_start in
  {
    rule;
    file = pos.Lexing.pos_fname;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    modname;
    offender;
    message;
    status = Violation;
  }

let fingerprint d = Printf.sprintf "%s %s %s" d.rule d.modname d.offender

(* Allowlist keys may be module-wide ("R5 Btree") or member-exact
   ("R5 Btree Array.unsafe_get"). *)
let allow_keys d =
  [ Printf.sprintf "%s %s" d.rule d.modname; fingerprint d ]

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let pp ppf d =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.message

let status_string = function
  | Violation -> "violation"
  | Allowlisted _ -> "allowlisted"
  | Baselined -> "baselined"

(* --- machine-readable report --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let reason =
    match d.status with Allowlisted r -> Printf.sprintf ", \"reason\": \"%s\"" (json_escape r) | _ -> ""
  in
  Printf.sprintf
    "{\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \"col\": %d, \
     \"module\": \"%s\", \"offender\": \"%s\", \"message\": \"%s\", \
     \"status\": \"%s\"%s}"
    d.rule (json_escape d.file) d.line d.col (json_escape d.modname)
    (json_escape d.offender) (json_escape d.message)
    (status_string d.status) reason

let report_to_json diags =
  let items = List.map (fun d -> "  " ^ to_json d) diags in
  "[\n" ^ String.concat ",\n" items ^ "\n]\n"
