(* Diagnostics: what a rule found, where, and what became of it.

   A diagnostic's fingerprint — "RULE Module offender" — deliberately
   excludes source locations so that allowlist and baseline entries survive
   unrelated edits to the flagged file. *)

type status =
  | Violation
  | Allowlisted of string  (* the configured reason *)
  | Baselined

type severity = Error | Warning | Note

type t = {
  rule : string;     (* "R1" .. "R9" *)
  file : string;     (* workspace-relative source path *)
  line : int;
  col : int;
  modname : string;  (* unprefixed module name, e.g. "Exec" *)
  offender : string; (* normalized reference, e.g. "Disk.load_page" or "=@list" *)
  message : string;
  severity : severity;
  trace : (string * int * int * string) list;
      (* dataflow steps (file, line, col, note), acquire-to-leak order;
         empty for occurrence rules *)
  mutable status : status;
}

let make ?(severity = Error) ?(trace = []) ~rule ~loc ~modname ~offender
    ~message () =
  let pos = loc.Location.loc_start in
  {
    rule;
    file = pos.Lexing.pos_fname;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    modname;
    offender;
    message;
    severity;
    trace;
    status = Violation;
  }

let fingerprint d = Printf.sprintf "%s %s %s" d.rule d.modname d.offender

(* Allowlist keys may be module-wide ("R5 Btree") or member-exact
   ("R5 Btree Array.unsafe_get"). *)
let allow_keys d =
  [ Printf.sprintf "%s %s" d.rule d.modname; fingerprint d ]

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.offender b.offender

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "note" -> Some Note
  | _ -> None

let pp ppf d =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.message

let pp_trace ppf d =
  List.iter
    (fun (f, l, c, note) ->
      Format.fprintf ppf "    %s:%d:%d: %s@." f l c note)
    d.trace

let status_string = function
  | Violation -> "violation"
  | Allowlisted _ -> "allowlisted"
  | Baselined -> "baselined"

(* --- machine-readable report --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let trace_to_json trace =
  let step (f, l, c, note) =
    Printf.sprintf
      "{\"file\": \"%s\", \"line\": %d, \"col\": %d, \"note\": \"%s\"}"
      (json_escape f) l c (json_escape note)
  in
  "[" ^ String.concat ", " (List.map step trace) ^ "]"

let to_json d =
  let reason =
    match d.status with
    | Allowlisted r -> Printf.sprintf ", \"reason\": \"%s\"" (json_escape r)
    | _ -> ""
  in
  let trace =
    match d.trace with
    | [] -> ""
    | t -> Printf.sprintf ", \"trace\": %s" (trace_to_json t)
  in
  Printf.sprintf
    "{\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \"col\": %d, \
     \"module\": \"%s\", \"offender\": \"%s\", \"message\": \"%s\", \
     \"severity\": \"%s\", \"status\": \"%s\"%s%s}"
    d.rule (json_escape d.file) d.line d.col (json_escape d.modname)
    (json_escape d.offender) (json_escape d.message)
    (severity_string d.severity) (status_string d.status) reason trace

let report_to_json diags =
  let items = List.map (fun d -> "  " ^ to_json d) diags in
  "[\n" ^ String.concat ",\n" items ^ "\n]\n"
