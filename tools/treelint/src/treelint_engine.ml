(* The analysis engine: loads the .cmt typed ASTs dune already emits, walks
   them once collecting value references, counter mutations and toplevel
   state, and evaluates the six treelint rules.

   Everything works on *typed* trees: a polymorphic [=] is only flagged when
   its instantiated argument type is neither immediate nor one of the types
   the compiler specializes comparisons for, which is what makes the rule
   usable on a codebase with 1,500+ [=] sites (almost all on ints). *)

(* compiler-libs' [Config] is shadowed by the alias below; capture what we
   need from it first. *)
let ocaml_stdlib_dir = Config.standard_library

module Config = Treelint_config
module Diag = Treelint_diag

(* ------------------------------------------------------------------ *)
(* Path normalization                                                  *)
(* ------------------------------------------------------------------ *)

(* "Tb_sim.Sim.charge_rpc"  -> owner library "sim",  name "Sim.charge_rpc"
   "Tb_sim__Sim.charge_rpc" -> same
   "Stdlib.Hashtbl.hash"    -> owner None (stdlib),  name "Hashtbl.hash"
   "Stdlib.="               -> owner None,           name "="
   local idents             -> owner None,           name as-is *)

type ref_info = {
  r_lib : string option;  (* library key from [libraries], None = stdlib/local *)
  r_name : string;        (* normalized qualified name *)
  r_stdlib : bool;
}

let split_wrapper comp =
  (* "Tb_sim__Sim" -> Some ("Tb_sim", "Sim") *)
  match String.index_opt comp '_' with
  | None -> None
  | Some _ -> (
      let n = String.length comp in
      let rec find i =
        if i + 1 >= n then None
        else if comp.[i] = '_' && comp.[i + 1] = '_' then Some i
        else find (i + 1)
      in
      match find 0 with
      | Some i when i > 0 && i + 2 < n ->
          Some (String.sub comp 0 i, String.sub comp (i + 2) (n - i - 2))
      | _ -> None)

let normalize_path ~(config : Config.t) ~aliases path_name =
  let comps = String.split_on_char '.' path_name in
  (* Expand a head that is a local [module M = Other.Path] alias. *)
  let rec expand fuel comps =
    match comps with
    | head :: rest when fuel > 0 -> (
        match List.assoc_opt head aliases with
        | Some target -> expand (fuel - 1) (String.split_on_char '.' target @ rest)
        | None -> comps)
    | _ -> comps
  in
  let comps = expand 4 comps in
  match comps with
  | [] -> { r_lib = None; r_name = path_name; r_stdlib = false }
  | head :: rest -> (
      let from_wrapper wrapper inner =
        match List.assoc_opt wrapper config.libraries with
        | Some lib ->
            Some { r_lib = Some lib; r_name = String.concat "." inner; r_stdlib = false }
        | None -> None
      in
      match split_wrapper head with
      | Some (wrapper, m) when from_wrapper wrapper (m :: rest) <> None ->
          Option.get (from_wrapper wrapper (m :: rest))
      | _ ->
          if String.equal head "Stdlib" && rest <> [] then
            { r_lib = None; r_name = String.concat "." rest; r_stdlib = true }
          else
            match from_wrapper head rest with
            | Some r -> r
            | None -> { r_lib = None; r_name = path_name; r_stdlib = false })

(* ------------------------------------------------------------------ *)
(* Type classification (R3)                                            *)
(* ------------------------------------------------------------------ *)

type tclass =
  | Immediate    (* ints, chars, bools, constant variants, private ints... *)
  | Specialized  (* float/string/bytes/int32/int64/nativeint: the compiler
                    emits a monomorphic comparison *)
  | Boxed of string  (* structural compare/hash at runtime; payload names
                        the offending type's head constructor *)

let specialized_paths =
  [
    Predef.path_float;
    Predef.path_string;
    Predef.path_bytes;
    Predef.path_int32;
    Predef.path_int64;
    Predef.path_nativeint;
  ]

let short_type_name ~config path =
  (normalize_path ~config ~aliases:[] (Path.name path)).r_name

let rec classify_type ~config env ty =
  let ty = try Ctype.expand_head env ty with _ -> ty in
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
      if List.exists (Path.same p) specialized_paths then Specialized
      else
        match Env.find_type p env with
        | decl -> (
            match decl.Types.type_immediate with
            | Type_immediacy.Always | Type_immediacy.Always_on_64bits ->
                Immediate
            | Type_immediacy.Unknown -> Boxed (short_type_name ~config p))
        | exception Not_found ->
            if Path.same p Predef.path_int then Immediate
            else Boxed (short_type_name ~config p))
  | Types.Tvar _ | Types.Tunivar _ -> Boxed "'a"
  | Types.Ttuple _ -> Boxed "tuple"
  | Types.Tarrow _ -> Boxed "fun"
  | Types.Tobject _ -> Boxed "object"
  | Types.Tvariant _ -> Boxed "polyvariant"
  | Types.Tpoly (t, _) -> classify_type ~config env t
  | _ -> Boxed "?"

let rec first_arrow_arg ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, _, _) -> Some a
  | Types.Tpoly (t, _) -> first_arrow_arg t
  | _ -> None

(* The key type of the [('k, 'v) Hashtbl.t] somewhere in an op's type. *)
let hashtbl_key_type ty =
  let found = ref None in
  let rec scan depth ty =
    if depth > 12 || !found <> None then ()
    else
      match Types.get_desc ty with
      | Types.Tconstr (p, [ k; _v ], _)
        when String.equal (Path.name p) "Stdlib.Hashtbl.t"
             || String.equal (Path.name p) "Hashtbl.t" ->
          found := Some k
      | Types.Tconstr (_, args, _) -> List.iter (scan (depth + 1)) args
      | Types.Tarrow (_, a, b, _) ->
          scan (depth + 1) a;
          scan (depth + 1) b
      | Types.Tpoly (t, _) -> scan (depth + 1) t
      | _ -> ()
  in
  scan 0 ty;
  !found

(* ------------------------------------------------------------------ *)
(* Occurrence collection                                               *)
(* ------------------------------------------------------------------ *)

type occurrence = {
  o_ref : ref_info;
  o_loc : Location.t;
  o_type : Types.type_expr;  (* instantiated type at the use site *)
  o_env : Env.t;             (* summarized env, reconstructed lazily *)
}

type counter_set = { cs_field : string; cs_loc : Location.t }

type toplevel = {
  t_name : string;
  t_loc : Location.t;
  t_mutable : string option;  (* creator that makes it mutable state *)
  t_refs : string list;       (* same-module toplevel names it references *)
}

type module_facts = {
  m_modname : string;        (* "Exec" *)
  m_lib : string;            (* "query" *)
  m_source : string;
  m_occs : occurrence list;
  m_counter_sets : counter_set list;
  m_toplevels : toplevel list;
  m_ext_constrs : (ref_info * Location.t) list;
      (* extension constructors (exceptions) built or matched, for R6 *)
  m_cfg : Treelint_cfg.mod_cfg;  (* lowered CFGs for the dataflow rules *)
}

let iter_expr_idents f expr =
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.Typedtree.exp_desc with
           | Typedtree.Texp_ident (p, _, _) -> f p
           | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it expr

(* Is [expr]'s outermost construction mutable state?  Returns the creator
   name for the diagnostic. *)
let mutable_creator ~(config : Config.t) ~aliases expr =
  match expr.Typedtree.exp_desc with
  | Typedtree.Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
      let r = normalize_path ~config ~aliases (Path.name p) in
      if List.exists (String.equal r.r_name) config.r4_creators then
        Some r.r_name
      else None
  | Typedtree.Texp_record { fields; _ } ->
      if
        Array.exists
          (fun (lbl, _) -> lbl.Types.lbl_mut = Asttypes.Mutable)
          fields
      then Some "mutable record"
      else None
  | Typedtree.Texp_array (_ :: _) -> Some "array literal"
  | _ -> None

let collect_module ~(config : Config.t) ~modname ~lib ~source str =
  let occs = ref [] in
  let counter_sets = ref [] in
  let aliases = ref [] in
  (* Pass 1: local module aliases, in declaration order (later normalization
     sees the full map; fine for a lint — shadowing is not idiomatic here). *)
  let record_alias name mexpr =
    let rec target me =
      match me.Typedtree.mod_desc with
      | Typedtree.Tmod_ident (p, _) -> Some (Path.name p)
      | Typedtree.Tmod_constraint (me, _, _, _) -> target me
      | _ -> None
    in
    match target mexpr with
    | Some t -> aliases := (name, t) :: !aliases
    | None -> ()
  in
  List.iter
    (fun item ->
      match item.Typedtree.str_desc with
      | Typedtree.Tstr_module { mb_name = { txt = Some name; _ }; mb_expr; _ } ->
          record_alias name mb_expr
      | _ -> ())
    str.Typedtree.str_items;
  let aliases = !aliases in
  (* Pass 2: every value reference and counter mutation; also every
     exception (extension constructor) built or matched, for R6.  The
     constructor's defining path, not the use-site spelling, is what gets
     normalized, so aliases and re-exports can't smuggle one past. *)
  let ext_constrs = ref [] in
  let record_constr (lid : Longident.t Location.loc)
      (cd : Types.constructor_description) =
    match cd.Types.cstr_tag with
    | Types.Cstr_extension (p, _) ->
        ext_constrs :=
          (normalize_path ~config ~aliases (Path.name p), lid.Location.loc)
          :: !ext_constrs
    | _ -> ()
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.Typedtree.exp_desc with
           | Typedtree.Texp_ident (p, lid, _) ->
               occs :=
                 {
                   o_ref = normalize_path ~config ~aliases (Path.name p);
                   o_loc = lid.Location.loc;
                   o_type = e.Typedtree.exp_type;
                   o_env = e.Typedtree.exp_env;
                 }
                 :: !occs
           | Typedtree.Texp_setfield (rcd, lid, lbl, _) ->
               let rty =
                 normalize_path ~config ~aliases
                   (match Types.get_desc rcd.Typedtree.exp_type with
                   | Types.Tconstr (p, _, _) -> Path.name p
                   | _ -> "")
               in
               if String.equal rty.r_name "Counters.t" then
                 counter_sets :=
                   { cs_field = lbl.Types.lbl_name; cs_loc = lid.Location.loc }
                   :: !counter_sets
           | Typedtree.Texp_construct (lid, cd, _) -> record_constr lid cd
           | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
      pat =
        (fun (type k) sub (p : k Typedtree.general_pattern) ->
          (match p.Typedtree.pat_desc with
           | Typedtree.Tpat_construct (lid, cd, _, _) -> record_constr lid cd
           | _ -> ());
          Tast_iterator.default_iterator.pat sub p);
      module_expr =
        (fun sub me ->
          (match me.Typedtree.mod_desc with
           | Typedtree.Tmod_ident (p, lid) ->
               occs :=
                 {
                   o_ref = normalize_path ~config ~aliases (Path.name p);
                   o_loc = lid.Location.loc;
                   o_type = Predef.type_unit;  (* module ref: no value type *)
                   o_env = me.Typedtree.mod_env;
                 }
                 :: !occs
           | _ -> ());
          Tast_iterator.default_iterator.module_expr sub me);
    }
  in
  it.structure it str;
  (* Pass 3: toplevel bindings for R4. *)
  let toplevels = ref [] in
  let toplevel_names =
    List.concat_map
      (fun item ->
        match item.Typedtree.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
            List.filter_map
              (fun vb ->
                match vb.Typedtree.vb_pat.Typedtree.pat_desc with
                | Typedtree.Tpat_var (_, { txt; _ }) -> Some txt
                | _ -> None)
              vbs
        | _ -> [])
      str.Typedtree.str_items
  in
  List.iter
    (fun item ->
      match item.Typedtree.str_desc with
      | Typedtree.Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match vb.Typedtree.vb_pat.Typedtree.pat_desc with
              | Typedtree.Tpat_var (_, { txt = name; loc }) ->
                  let refs = ref [] in
                  iter_expr_idents
                    (fun p ->
                      match p with
                      | Path.Pident id ->
                          let n = Ident.name id in
                          if
                            List.exists (String.equal n) toplevel_names
                            && not (String.equal n name)
                          then refs := n :: !refs
                      | _ -> ())
                    vb.Typedtree.vb_expr;
                  toplevels :=
                    {
                      t_name = name;
                      t_loc = loc;
                      t_mutable =
                        mutable_creator ~config ~aliases vb.Typedtree.vb_expr;
                      t_refs = !refs;
                    }
                    :: !toplevels
              | _ -> ())
            vbs
      | _ -> ())
    str.Typedtree.str_items;
  (* Pass 4: lower every function to a CFG for the dataflow rules. *)
  let hooks =
    {
      Treelint_cfg.h_norm =
        (fun p -> (normalize_path ~config ~aliases (Path.name p)).r_name);
      h_field =
        (fun lbl ->
          let head ty =
            match Types.get_desc ty with
            | Types.Tconstr (p, _, _) ->
                Some (normalize_path ~config ~aliases (Path.name p)).r_name
            | _ -> None
          in
          match head lbl.Types.lbl_res with
          | None -> None
          | Some owner_ty ->
              let owner =
                match String.split_on_char '.' owner_ty with
                | m :: _ -> m
                | [] -> owner_ty
              in
              let is_rng =
                match head lbl.Types.lbl_arg with
                | Some n -> String.equal n "Rng.t"
                | None -> false
              in
              Some (owner, is_rng));
    }
  in
  {
    m_modname = modname;
    m_lib = lib;
    m_source = source;
    m_occs = List.rev !occs;
    m_counter_sets = List.rev !counter_sets;
    m_toplevels = List.rev !toplevels;
    m_ext_constrs = List.rev !ext_constrs;
    m_cfg = Treelint_cfg.lower_module ~hooks ~modname str;
  }

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

let real_env occ = try Envaux.env_of_only_summary occ.o_env with _ -> occ.o_env

let rank (config : Config.t) lib = List.assoc_opt lib config.layers

(* R1 — charge discipline. *)
let rule_r1 (config : Config.t) m =
  let diags = ref [] in
  let module_allowed allowed = List.exists (String.equal m.m_modname) allowed in
  List.iter
    (fun occ ->
      if Config.matches_member config.r1_page_members occ.o_ref.r_name then
        if not (module_allowed config.r1_page_allowed) then
          diags :=
            Diag.make ~rule:"R1" ~loc:occ.o_loc ~modname:m.m_modname
              ~offender:occ.o_ref.r_name
              ~message:
                (Printf.sprintf
                   "raw page access %s outside the buffer/log layer — page \
                    traffic here would bypass the fetch charges the \
                    fingerprint counts"
                   occ.o_ref.r_name)
              ()
            :: !diags;
      if Config.matches_member config.r1_charge_prefixes occ.o_ref.r_name then
        if not (module_allowed config.r1_charge_allowed) then
          diags :=
            Diag.make ~rule:"R1" ~loc:occ.o_loc ~modname:m.m_modname
              ~offender:occ.o_ref.r_name
              ~message:
                (Printf.sprintf
                   "%s from a module not whitelisted to charge the cost \
                    model — uncoordinated charges corrupt the golden \
                    fingerprint"
                   occ.o_ref.r_name)
              ()
            :: !diags)
    m.m_occs;
  List.iter
    (fun cs ->
      if not (module_allowed config.r1_charge_allowed) then
        diags :=
          Diag.make ~rule:"R1" ~loc:cs.cs_loc ~modname:m.m_modname
            ~offender:(Printf.sprintf "Counters.%s<-" cs.cs_field)
            ~message:
              (Printf.sprintf
                 "direct mutation of counter field %s outside the \
                  whitelisted modules"
                 cs.cs_field)
            ()
          :: !diags)
    m.m_counter_sets;
  !diags

(* R2 — layer boundaries: library DAG plus internal-module table. *)
let rule_r2 (config : Config.t) m =
  let diags = ref [] in
  let my_rank = rank config m.m_lib in
  List.iter
    (fun occ ->
      (match (occ.o_ref.r_lib, my_rank) with
      | Some other_lib, Some my_rank when not (String.equal other_lib m.m_lib)
        -> (
          match rank config other_lib with
          | Some other_rank when other_rank >= my_rank ->
              diags :=
                Diag.make ~rule:"R2" ~loc:occ.o_loc ~modname:m.m_modname
                  ~offender:(other_lib ^ "." ^ occ.o_ref.r_name)
                  ~message:
                    (Printf.sprintf
                       "layer violation: %s (layer %s, rank %d) references \
                        %s from layer %s (rank %d); references must flow \
                        strictly downward"
                       m.m_modname m.m_lib my_rank occ.o_ref.r_name other_lib
                       other_rank)
                  ()
                :: !diags
          | _ -> ())
      | _ -> ());
      (* Internal-module restrictions, at any rank. *)
      match String.split_on_char '.' occ.o_ref.r_name with
      | target_mod :: _ when occ.o_ref.r_lib <> None -> (
          match List.assoc_opt target_mod config.r2_internal with
          | Some allowed when not (String.equal target_mod m.m_modname) ->
              let ok =
                List.exists
                  (fun tok ->
                    String.equal tok m.m_modname
                    || String.equal tok m.m_lib)
                  allowed
              in
              if not ok then
                diags :=
                  Diag.make ~rule:"R2" ~loc:occ.o_loc ~modname:m.m_modname
                    ~offender:occ.o_ref.r_name
                    ~message:
                      (Printf.sprintf
                         "%s is internal to its layer; only [%s] may reach \
                          it, not %s"
                         target_mod
                         (String.concat ", " allowed)
                         m.m_modname)
                    ()
                  :: !diags
          | _ -> ())
      | _ -> ())
    m.m_occs;
  !diags

(* R3 — determinism and specialized comparisons. *)
let rule_r3 (config : Config.t) m =
  if not (List.exists (String.equal m.m_lib) config.r3_layers) then []
  else begin
    let diags = ref [] in
    let add occ offender message =
      diags :=
        Diag.make ~rule:"R3" ~loc:occ.o_loc ~modname:m.m_modname ~offender
          ~message ()
        :: !diags
    in
    List.iter
      (fun occ ->
        let name = occ.o_ref.r_name in
        let stdlib_side = occ.o_ref.r_lib = None in
        if stdlib_side && Config.matches_member config.r3_banned name then
          add occ name
            (Printf.sprintf
               "%s is a nondeterminism source — simulated runs must be \
                exactly reproducible from the seed"
               name)
        else if stdlib_side && occ.o_ref.r_stdlib
                && List.exists (String.equal name) config.r3_poly
        then (
          match first_arrow_arg occ.o_type with
          | Some arg -> (
              match classify_type ~config (real_env occ) arg with
              | Immediate | Specialized -> ()
              | Boxed tyname ->
                  add occ
                    (Printf.sprintf "%s@%s" name tyname)
                    (Printf.sprintf
                       "polymorphic %s on %s: structural comparison walks \
                        the heap at runtime — use the specialized \
                        equal/compare for this type"
                       name tyname))
          | None -> ())
        else if stdlib_side
                && List.exists (String.equal name) config.r3_mem_family
        then (
          match first_arrow_arg occ.o_type with
          | Some arg -> (
              match classify_type ~config (real_env occ) arg with
              | Immediate | Specialized -> ()
              | Boxed tyname ->
                  add occ
                    (Printf.sprintf "%s@%s" name tyname)
                    (Printf.sprintf
                       "%s uses polymorphic equality over %s keys — use an \
                        explicit find with the type's own equal"
                       name tyname))
          | None -> ())
        else if stdlib_side
                && List.exists (String.equal name) config.r3_hashtbl_ops
        then
          match hashtbl_key_type occ.o_type with
          | Some k -> (
              match classify_type ~config (real_env occ) k with
              | Immediate | Specialized -> ()
              | Boxed tyname ->
                  add occ
                    (Printf.sprintf "%s@%s" name tyname)
                    (Printf.sprintf
                       "generic %s with %s keys hashes and compares \
                        structurally — use Hashtbl.Make with the key \
                        type's hash/equal"
                       name tyname))
          | None -> ())
      m.m_occs;
    !diags
  end

(* R4 — every toplevel mutable binding must be reachable from a
   reset/clear/restore/checkpoint-style entry point of its module. *)
let r4_is_root (config : Config.t) name =
  let segments = String.split_on_char '_' name in
  List.exists
    (fun root -> List.exists (String.equal root) segments)
    config.r4_roots

let rule_r4 (config : Config.t) m =
  match List.filter (fun t -> t.t_mutable <> None) m.m_toplevels with
  | [] -> []
  | mutables ->
      (* Reachability over the same-module toplevel reference graph. *)
      let reached = Hashtbl.create 16 in
      let rec visit name =
        if not (Hashtbl.mem reached name) then begin
          Hashtbl.add reached name ();
          List.iter
            (fun t ->
              if String.equal t.t_name name then List.iter visit t.t_refs)
            m.m_toplevels
        end
      in
      List.iter
        (fun t -> if r4_is_root config t.t_name then visit t.t_name)
        m.m_toplevels;
      List.filter_map
        (fun t ->
          if Hashtbl.mem reached t.t_name then None
          else
            Some
              (Diag.make ~rule:"R4" ~loc:t.t_loc ~modname:m.m_modname
                 ~offender:t.t_name
                 ~message:
                   (Printf.sprintf
                      "toplevel mutable state `%s` (%s) is not reachable \
                       from any %s function of %s — a forgotten global \
                       breaks run-to-run counter invariance and crash \
                       recovery"
                      t.t_name
                      (Option.value t.t_mutable ~default:"?")
                      (String.concat "/" config.r4_roots)
                      m.m_modname)
                 ()))
        mutables

(* R5 — unsafe operations. *)
let rule_r5 (config : Config.t) m =
  if List.exists (String.equal m.m_modname) config.r5_allowed then []
  else
    List.filter_map
      (fun occ ->
        if
          occ.o_ref.r_lib = None
          && Config.matches_member config.r5_banned occ.o_ref.r_name
        then
          Some
            (Diag.make ~rule:"R5" ~loc:occ.o_loc ~modname:m.m_modname
               ~offender:occ.o_ref.r_name
               ~message:
                 (Printf.sprintf
                    "%s outside the codec/page layer — unchecked access \
                     can silently corrupt page images"
                    occ.o_ref.r_name)
               ())
        else None)
      m.m_occs

(* R6 — shard-failure exceptions are the failover protocol's private
   signalling: only the listed modules may construct or match them.  A
   stray [try ... with Fault.Shard_down _] elsewhere would swallow a crash
   the executor is supposed to turn into a failover (wrong results, no
   failover frame); a stray raise would fake one. *)
let rule_r6 (config : Config.t) m =
  if List.exists (String.equal m.m_modname) config.r6_allowed then []
  else
    List.filter_map
      (fun ((r : ref_info), loc) ->
        if Config.matches_member config.r6_exceptions r.r_name then
          Some
            (Diag.make ~rule:"R6" ~loc ~modname:m.m_modname
               ~offender:r.r_name
               ~message:
                 (Printf.sprintf
                    "%s raised or matched outside the failover protocol \
                     (only [%s] may) — handling a shard failure elsewhere \
                     bypasses the executor's failover accounting"
                    r.r_name
                    (String.concat ", " config.r6_allowed))
               ())
        else None)
      m.m_ext_constrs

let all_rules = [ rule_r1; rule_r2; rule_r3; rule_r4; rule_r5; rule_r6 ]

(* R7/R8/R9 run in the interprocedural dataflow pass, not per-module *)
let rule_count = List.length all_rules + 3

(* ------------------------------------------------------------------ *)
(* Cmt discovery and driving                                           *)
(* ------------------------------------------------------------------ *)

let rec find_cmts dir acc =
  match Sys.readdir dir with
  | entries ->
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then find_cmts path acc
          else if Filename.check_suffix entry ".cmt" then path :: acc
          else acc)
        acc entries
  | exception Sys_error _ -> acc

(* Module identity from "Tb_query__Exec"; the bare wrapper module
   ("Tb_query", dune's generated alias file) is skipped. *)
let identify ~(config : Config.t) modname =
  match split_wrapper modname with
  | Some (wrapper, m) -> (
      match List.assoc_opt wrapper config.libraries with
      | Some lib -> Some (lib, m)
      | None -> None)
  | None -> (
      match List.assoc_opt modname config.libraries with
      | Some _ -> None (* generated library alias module *)
      | None -> None)

type result = {
  diagnostics : Diag.t list;  (* sorted; statuses set *)
  files_scanned : int;
  violations : int;
  allowlisted : int;
  baselined : int;
}

let load_module ~config path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | cmt -> (
      match identify ~config cmt.Cmt_format.cmt_modname with
      | None -> None
      | Some (lib, modname) -> (
          match cmt.Cmt_format.cmt_annots with
          | Cmt_format.Implementation str ->
              let source =
                Option.value cmt.Cmt_format.cmt_sourcefile ~default:path
              in
              if Filename.check_suffix source ".ml-gen" then None
              else Some (collect_module ~config ~modname ~lib ~source str)
          | _ -> None))

let result_of_diags diagnostics ~files_scanned =
  let count st =
    List.length
      (List.filter (fun d -> Diag.status_string d.Diag.status = st) diagnostics)
  in
  {
    diagnostics;
    files_scanned;
    violations = count "violation";
    allowlisted = count "allowlisted";
    baselined = count "baselined";
  }

let run ?cache ~(config : Config.t) ~baseline ~extra_dirs ~dirs () =
  (* Load path: the stdlib plus every directory that holds a scanned cmt
     (their cmis live alongside), so Envaux can rebuild typing envs. *)
  let cmts = List.concat_map (fun d -> find_cmts d []) dirs in
  (* Incremental cache: a full digest hit skips reading any cmt at all. *)
  let cache_key =
    match cache with
    | None -> None
    | Some (path, salt) -> Some (path, Treelint_cache.key ~salt cmts)
  in
  match
    Option.bind cache_key (fun (path, k) -> Treelint_cache.load ~path k)
  with
  | Some (diags, files_scanned) -> result_of_diags diags ~files_scanned
  | None ->
  let cmt_dirs =
    List.sort_uniq String.compare (List.map Filename.dirname cmts)
  in
  Load_path.init ~auto_include:Load_path.no_auto_include
    (ocaml_stdlib_dir :: (cmt_dirs @ extra_dirs));
  Envaux.reset_cache ();
  let modules =
    List.filter_map (load_module ~config) (List.sort String.compare cmts)
  in
  let diagnostics =
    List.concat_map
      (fun m -> List.concat_map (fun rule -> rule config m) all_rules)
      modules
  in
  (* Interprocedural pass: R7/R8/R9 over the lowered CFGs. *)
  let libs = Hashtbl.create 64 in
  List.iter (fun m -> Hashtbl.replace libs m.m_modname m.m_lib) modules;
  let flow_diags =
    Treelint_dataflow.run ~config
      ~mods:(List.map (fun m -> m.m_cfg) modules)
      ~mod_lib:(fun modname -> Hashtbl.find_opt libs modname)
  in
  let diagnostics = List.sort Diag.compare (diagnostics @ flow_diags) in
  List.iter
    (fun d ->
      let keys = Diag.allow_keys d in
      match
        List.find_map
          (fun k -> List.assoc_opt k config.allow)
          keys
      with
      | Some reason -> d.Diag.status <- Diag.Allowlisted reason
      | None ->
          if List.exists (String.equal (Diag.fingerprint d)) baseline then
            d.Diag.status <- Diag.Baselined)
    diagnostics;
  (match cache_key with
  | Some (path, k) ->
      Treelint_cache.store ~path k diagnostics
        ~files_scanned:(List.length modules)
  | None -> ());
  result_of_diags diagnostics ~files_scanned:(List.length modules)
