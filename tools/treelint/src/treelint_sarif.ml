(* SARIF 2.1.0 output, plus a small JSON parser used to validate what we
   emit (the toolchain has no JSON library; both directions are local).

   Shape choices:
   - one run, driver "treelint", every rule declared under the driver;
   - diagnostics map 1:1 to results, in the engine's sorted order;
   - allowlisted/baselined diagnostics become results carrying a
     [suppressions] array instead of being dropped, so the SARIF view of
     a run matches the human report exactly;
   - dataflow traces become a single-thread [codeFlows] entry;
   - the fingerprint goes into [partialFingerprints] under "treelint/v1",
     which is what CI de-duplication keys on. *)

module Diag = Treelint_diag

let schema_uri = "https://json.schemastore.org/sarif-2.1.0.json"
let tool_version = "2.0.0"

let rule_help = function
  | "R1" -> "charge discipline: page traffic and cost-model charges"
  | "R2" -> "layering: references must flow strictly downward"
  | "R3" -> "determinism: no wall clock, polymorphic hash or compare"
  | "R4" -> "toplevel mutable state must be reachable from reset/create"
  | "R5" -> "unsafe array/bytes/string access outside the codec layer"
  | "R6" -> "shard-failure exceptions stay inside the failover protocol"
  | "R7" -> "every pin/acquire is released on all paths, including unwinds"
  | "R8" -> "RNG draws stay inside their stream's owning modules"
  | "R9" -> "cost-model charges dominate the effects they account for"
  | r -> r

let level_of = function
  | Diag.Error -> "error"
  | Diag.Warning -> "warning"
  | Diag.Note -> "note"

let esc = Diag.json_escape

let location ~file ~line ~col ?msg () =
  let message =
    match msg with
    | Some m -> Printf.sprintf ", \"message\": {\"text\": \"%s\"}" (esc m)
    | None -> ""
  in
  Printf.sprintf
    "{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"%s\"}, \
     \"region\": {\"startLine\": %d, \"startColumn\": %d}}%s}"
    (esc file) (max 1 line) (col + 1) message

let result_of (d : Diag.t) =
  let suppression =
    match d.Diag.status with
    | Diag.Violation -> ""
    | Diag.Allowlisted reason ->
        Printf.sprintf
          ", \"suppressions\": [{\"kind\": \"inSource\", \"justification\": \
           \"%s\"}]"
          (esc reason)
    | Diag.Baselined ->
        ", \"suppressions\": [{\"kind\": \"external\", \"justification\": \
         \"baselined\"}]"
  in
  let code_flows =
    match d.Diag.trace with
    | [] -> ""
    | steps ->
        let tfl =
          List.map
            (fun (f, l, c, note) ->
              Printf.sprintf "{\"location\": %s}"
                (location ~file:f ~line:l ~col:c ~msg:note ()))
            steps
        in
        Printf.sprintf
          ", \"codeFlows\": [{\"threadFlows\": [{\"locations\": [%s]}]}]"
          (String.concat ", " tfl)
  in
  Printf.sprintf
    "{\"ruleId\": \"%s\", \"level\": \"%s\", \"message\": {\"text\": \
     \"%s\"}, \"locations\": [%s], \"partialFingerprints\": \
     {\"treelint/v1\": \"%s\"}%s%s}"
    d.Diag.rule
    (level_of d.Diag.severity)
    (esc d.Diag.message)
    (location ~file:d.Diag.file ~line:d.Diag.line ~col:d.Diag.col ())
    (esc (Diag.fingerprint d))
    suppression code_flows

let report diags =
  let rules =
    List.sort_uniq String.compare (List.map (fun d -> d.Diag.rule) diags)
  in
  let rule_defs =
    List.map
      (fun r ->
        Printf.sprintf
          "{\"id\": \"%s\", \"shortDescription\": {\"text\": \"%s\"}}" r
          (esc (rule_help r)))
      rules
  in
  let results = List.map result_of diags in
  Printf.sprintf
    "{\n\
    \  \"$schema\": \"%s\",\n\
    \  \"version\": \"2.1.0\",\n\
    \  \"runs\": [{\n\
    \    \"tool\": {\"driver\": {\"name\": \"treelint\", \"version\": \
     \"%s\", \"rules\": [%s]}},\n\
    \    \"results\": [%s]\n\
    \  }]\n\
     }\n"
    schema_uri tool_version
    (String.concat ", " rule_defs)
    (String.concat ",\n      " results)

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser                                                *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : (json, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      v
    end
    else fail ("bad literal, wanted " ^ word)
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then fail "dangling escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' -> Buffer.add_char buf '"'; go ()
            | '\\' -> Buffer.add_char buf '\\'; go ()
            | '/' -> Buffer.add_char buf '/'; go ()
            | 'n' -> Buffer.add_char buf '\n'; go ()
            | 't' -> Buffer.add_char buf '\t'; go ()
            | 'r' -> Buffer.add_char buf '\r'; go ()
            | 'b' -> Buffer.add_char buf '\b'; go ()
            | 'f' -> Buffer.add_char buf '\012'; go ()
            | 'u' ->
                if !pos + 4 > n then fail "short \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape"
                in
                (* UTF-8 encode the BMP scalar; good enough for our output *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end;
                go ()
            | _ -> fail "unknown escape")
        | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else begin
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elements []
        end
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

(* accessors *)
let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None
let to_int = function Num f -> Some (int_of_float f) | _ -> None

let mem_str j k = Option.bind (member k j) to_string
let mem_list j k = Option.value (Option.bind (member k j) to_list) ~default:[]

(* ------------------------------------------------------------------ *)
(* Structural validation against the parts of SARIF 2.1 we rely on    *)
(* ------------------------------------------------------------------ *)

let validate (j : json) : (unit, string list) result =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  (match mem_str j "version" with
  | Some "2.1.0" -> ()
  | Some v -> err "version is %S, wanted 2.1.0" v
  | None -> err "missing version");
  (match mem_str j "$schema" with
  | Some _ -> ()
  | None -> err "missing $schema");
  let runs = mem_list j "runs" in
  if runs = [] then err "runs is empty or missing";
  List.iteri
    (fun ri run ->
      let driver =
        Option.bind (member "tool" run) (member "driver")
        |> Option.value ~default:Null
      in
      (match mem_str driver "name" with
      | Some _ -> ()
      | None -> err "run %d: missing tool.driver.name" ri);
      let declared =
        List.filter_map (fun r -> mem_str r "id") (mem_list driver "rules")
      in
      (match member "results" run with
      | Some (Arr results) ->
          List.iteri
            (fun i r ->
              (match mem_str r "ruleId" with
              | Some id when List.mem id declared -> ()
              | Some id -> err "result %d: ruleId %S not declared" i id
              | None -> err "result %d: missing ruleId" i);
              (match mem_str r "level" with
              | Some ("error" | "warning" | "note" | "none") -> ()
              | Some l -> err "result %d: bad level %S" i l
              | None -> err "result %d: missing level" i);
              (match Option.bind (member "message" r) (fun m -> mem_str m "text")
               with
              | Some _ -> ()
              | None -> err "result %d: missing message.text" i);
              match mem_list r "locations" with
              | [] -> err "result %d: no locations" i
              | locs ->
                  List.iter
                    (fun l ->
                      let phys =
                        Option.value (member "physicalLocation" l)
                          ~default:Null
                      in
                      (match
                         Option.bind (member "artifactLocation" phys)
                           (fun a -> mem_str a "uri")
                       with
                      | Some _ -> ()
                      | None ->
                          err "result %d: location missing artifact uri" i);
                      match
                        Option.bind (member "region" phys) (fun r ->
                            Option.bind (member "startLine" r) to_int)
                      with
                      | Some n when n >= 1 -> ()
                      | Some _ -> err "result %d: startLine < 1" i
                      | None -> err "result %d: missing region.startLine" i)
                    locs)
            results
      | _ -> err "run %d: missing results array" ri))
    runs;
  if !errs = [] then Ok () else Error (List.rev !errs)
