(* The disciplined counterpart: everything here is legal under all five
   rules and must produce zero diagnostics. *)

type mode = Fast | Careful

let pick = function Fast -> 1 | Careful -> 2

(* immediate argument: polymorphic [=] specializes to a tag compare *)
let same_mode (x : mode) (y : mode) = x = y

(* compiler-specialized comparison *)
let close (x : float) (y : float) = x < y

let is_empty l = match l with [] -> true | _ :: _ -> false

let same_name = String.equal

(* monomorphic hash table keyed by the type's own hash/equal *)
module H = Hashtbl.Make (Tb_storage.Rid)

let fresh () : int H.t = H.create 16
