(* The R1 counterpart to r1_merge.ml: Exchange is whitelisted to charge —
   rows ship between shard lanes here — so the same kind of charge that is
   flagged there must be clean in this module. *)

let ship sim = Tb_sim.Sim.charge_rpc sim ~pages:1
