(* The r6-allowed module: the same raise and handler as r6_shard_down.ml,
   zero diagnostics because "Failover" is in the allowed list. *)

let kill shard = raise (Tb_storage.Fault.Shard_down shard)

let swallow f = try f () with Tb_storage.Fault.Shard_down _ -> ()
