(* The R5 counterpart to r5_unsafe.ml: this module is named in the config's
   r5 allowed list — the packed execution kernel may read record bytes
   unchecked — so the same call that is flagged there must be clean here. *)

let tag (b : bytes) = Char.code (Bytes.unsafe_get b 0)
