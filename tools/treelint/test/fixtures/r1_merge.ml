(* R1 fixture: the gather merge loop may not charge — only the Exchange
   kernels pay shipping and merge comparisons. *)

let merge sim = Tb_sim.Sim.charge_compare sim 8
