(* R1 fixtures: raw page access and a cost-model charge from a module that
   is not whitelisted for either. *)

let sneak_read stack pid =
  Tb_storage.Disk.load_page (Tb_storage.Cache_stack.disk stack) pid

let sneak_charge sim = Tb_sim.Sim.charge_disk_read sim
