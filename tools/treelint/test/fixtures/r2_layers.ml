(* R2 fixtures: an upward reference to a higher layer, and a reach into a
   module marked internal to its own layer. *)

let upward () = Tb_core.Fingerprint.collect ~scale:1

let into_internals page = Tb_storage.Page_layout.size page
