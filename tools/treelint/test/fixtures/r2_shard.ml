(* R2 fixture: shard internals belong to the store layer (plus the named
   planner/executor modules in the real config); any other reference is
   flagged. *)

let peek smap = Tb_store.Shard_map.count smap
