(* R3 fixtures: a nondeterminism source, polymorphic comparison on a boxed
   type, a structural hash, and a generic hash table over boxed keys. *)

type boxed = { a : int; b : string }

let roll () = Random.int 6

let same (x : boxed) (y : boxed) = x = y

let structural_hash (x : boxed) = Hashtbl.hash x

let fresh () : (boxed, int) Hashtbl.t = Hashtbl.create 8
