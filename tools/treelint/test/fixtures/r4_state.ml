(* R4 fixture: [forgotten] is toplevel mutable state with no reset path and
   must flag; [remembered] is reachable from [reset] and must not. *)

let forgotten = ref 0

let bump () = incr forgotten

let remembered = ref 0

let observe () = !remembered

let reset () = remembered := 0
