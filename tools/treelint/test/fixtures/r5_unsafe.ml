(* R5 fixture: an unsafe access outside the codec/page layer. *)

let first (a : int array) = Array.unsafe_get a 0

let raw (b : bytes) = Bytes.unsafe_get b 0
