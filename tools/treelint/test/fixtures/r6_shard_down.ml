(* R6 fixture: shard-failure exceptions belong to the failover protocol;
   both the raise and the handler pattern below are flagged. *)

let kill shard = raise (Tb_storage.Fault.Shard_down shard)

let swallow f = try f () with Tb_storage.Fault.Shard_down _ -> ()
