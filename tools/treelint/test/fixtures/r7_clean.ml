(* R7's disciplined counterparts: every shape here is leak-free and must
   produce zero diagnostics. *)

module Sim = Tb_sim.Sim
module Database = Tb_store.Database

(* the canonical fix: release rides the unwind via Fun.protect *)
let protected_sort sim ~count f =
  let bytes = count * 8 in
  Sim.claim_bytes sim bytes;
  Fun.protect
    ~finally:(fun () -> Sim.release_bytes sim bytes)
    (fun () -> f count)

(* the acquired handle escapes upward: the obligation is the caller's,
   and this helper must NOT be flagged *)
let escaping_acquire db rid = Database.acquire db rid

(* ...and here is the caller discharging what the helper passed up *)
let caller_releases db rid =
  let h = escaping_acquire db rid in
  Database.unref db h

(* the claim_and_sort contract: the claim survives the normal return (the
   caller owns it) but a catch-all handler releases it on the unwind *)
let reraise_release sim kvs ~bytes =
  Sim.claim_bytes sim bytes;
  match Array.of_list kvs with
  | arr -> arr
  | exception e ->
      Sim.release_bytes sim bytes;
      raise e
