(* R7 fixtures: pin/release obligations that leak on some path out of the
   acquiring function.  Line numbers are load-bearing for the test table. *)

module Sim = Tb_sim.Sim
module Rid = Tb_storage.Rid
module Database = Tb_store.Database

(* The pre-PR-5 sorted_rids shape: the claimed buffer bytes leak when the
   per-rid callback [f] raises — exactly the bug Fun.protect later fixed. *)
let leaky_sorted_rids sim ~rids ~count f =
  let claim = count * Rid.on_disk_bytes in
  Sim.claim_bytes sim claim;
  Sim.charge_sort sim count;
  let arr = Array.of_list rids in
  Array.sort Rid.compare arr;
  Array.iter f arr;
  Sim.release_bytes sim claim

(* released on one branch only: the else-path exits still holding it *)
let branch_leak db rid ~flag =
  let h = Database.acquire db rid in
  if flag then Database.unref db h

(* the acquired handle escapes upward through the summary... *)
let acquires db rid = Database.acquire db rid

(* ...and the caller never releases it: flagged here, not in [acquires] *)
let summary_leak db rid f =
  let h = acquires db rid in
  f h

(* a pinned handle leaks when the visitor raises mid-span *)
let handle_leak db rid f =
  let h = Database.acquire db rid in
  f h;
  Database.unref db h
