(* R8's disciplined side: this module owns the "alpha" stream (first entry
   of its module list in the test config), so creating and drawing here is
   legal.  Values it returns carry the taint to callers via summaries. *)

module Rng = Tb_sim.Rng

(* creating the stream's generator inside its owner: legal; the result is
   an alpha RNG wherever it flows *)
let make_alpha seed = Rng.create seed

(* drawing inside the owner: legal; the returned value is alpha-tainted *)
let jitter seed = Rng.int (Rng.create seed) 100
