(* R8 fixtures: foreign draws and tainted charges.  The "alpha" stream is
   owned by R8_clean; nothing here may draw from its generators or feed
   its values into a charge. *)

module Rng = Tb_sim.Rng
module Sim = Tb_sim.Sim

(* drawing on a foreign stream's generator: the RNG identity arrives
   through R8_clean.make_alpha's summary *)
let foreign_draw seed =
  let r = R8_clean.make_alpha seed in
  Rng.int r 5

(* a value drawn from alpha (legally, inside its owner) reaching a charge
   here: the replayed cost would depend on who consumed randomness first *)
let tainted_charge sim seed = Sim.charge_compare sim (R8_clean.jitter seed)

(* an RNG created outside any registered stream *)
let unregistered () = Rng.create 7
