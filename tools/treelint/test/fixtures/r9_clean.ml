(* R9's disciplined counterparts: charge first, effect after — directly,
   or with the charge hoisted into a helper the summaries see through. *)

module Sim = Tb_sim.Sim
module Disk = Tb_storage.Disk

let accounted_read sim disk page =
  Sim.charge_disk_read sim;
  Disk.load_page disk page

let accounted_write sim disk page img =
  Sim.charge_disk_write sim;
  Disk.persist disk page img

(* the charge lives in a local helper: its summary guarantees it on every
   normal return, so the effect downstream is covered *)
let charge_first sim = Sim.charge_disk_read sim

let helper_charged sim disk page =
  charge_first sim;
  Disk.load_page disk page
