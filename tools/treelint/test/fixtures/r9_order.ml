(* R9 fixtures: the cost-model charge must dominate the storage effect it
   accounts for.  Every effect below runs on some path with no charge. *)

module Sim = Tb_sim.Sim
module Disk = Tb_storage.Disk

(* no charge anywhere *)
let unaccounted_read disk page = Disk.load_page disk page

(* charged on one branch only: the must-join clears it at the effect *)
let charged_one_branch sim disk page ~hot =
  if hot then Sim.charge_disk_read sim;
  Disk.load_page disk page

(* the charge arrives after the effect it was supposed to account for *)
let late_charge sim disk page img =
  Disk.persist disk page img;
  Sim.charge_disk_write sim
