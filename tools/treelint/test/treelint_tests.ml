(* Treelint's own test suite: runs the engine over the fixture library (one
   deliberately violating module per rule, one clean module) and asserts the
   exact rule ids, locations and offenders; then exercises allowlist and
   baseline suppression and the TOML-subset parser.

   Runs from _build/default/tools/treelint/test; fixture cmts are next door
   and the repo libraries' cmis three levels up.  argv carries extra cmi
   directories (dune passes fmt's). *)

module Config = Treelint_config
module Diag = Treelint_diag
module Engine = Treelint_engine

let failures = ref 0

let check name cond =
  if cond then print_endline ("ok   " ^ name)
  else begin
    incr failures;
    print_endline ("FAIL " ^ name)
  end

let fixtures_dir = "fixtures/.treelint_fixtures.objs/byte"

let lib_objs =
  List.filter Sys.file_exists
    [
      "../../../lib/sim/.tb_sim.objs/byte";
      "../../../lib/storage/.tb_storage.objs/byte";
      "../../../lib/store/.tb_store.objs/byte";
      "../../../lib/query/.tb_query.objs/byte";
      "../../../lib/derby/.tb_derby.objs/byte";
      "../../../lib/oo7/.tb_oo7.objs/byte";
      "../../../lib/statdb/.tb_statdb.objs/byte";
      "../../../lib/core/.tb_core.objs/byte";
    ]

let extra_dirs =
  lib_objs @ List.map Filename.dirname (List.tl (Array.to_list Sys.argv))

let run ?(allow = []) ?(baseline = []) () =
  let config = Config.load "treelint_test.toml" in
  let config = { config with Config.allow = config.Config.allow @ allow } in
  Engine.run ~config ~baseline ~extra_dirs ~dirs:[ fixtures_dir ] ()

(* (rule, source basename, line, offender) for every expected diagnostic;
   fixture line numbers are load-bearing. *)
let expected =
  [
    ("R1", "r1_page.ml", 5, "Disk.load_page");
    ("R1", "r1_page.ml", 7, "Sim.charge_disk_read");
    ("R1", "r1_merge.ml", 4, "Sim.charge_compare");
    ("R2", "r2_shard.ml", 5, "Shard_map.count");
    ("R2", "r2_layers.ml", 4, "core.Fingerprint.collect");
    ("R2", "r2_layers.ml", 6, "Page_layout.size");
    ("R3", "r3_determinism.ml", 6, "Random.int");
    ("R3", "r3_determinism.ml", 8, "=@boxed");
    ("R3", "r3_determinism.ml", 10, "Hashtbl.hash");
    ("R3", "r3_determinism.ml", 12, "Hashtbl.create@boxed");
    ("R4", "r4_state.ml", 4, "forgotten");
    ("R5", "r5_unsafe.ml", 3, "Array.unsafe_get");
    ("R5", "r5_unsafe.ml", 5, "Bytes.unsafe_get");
    ("R6", "r6_shard_down.ml", 4, "Fault.Shard_down");
    ("R6", "r6_shard_down.ml", 6, "Fault.Shard_down");
    (* dataflow rules: the pre-PR-5 sorted_rids shape, a branch leak, a
       summary-transferred obligation dropped by its caller, a pin span
       broken by a raising visitor *)
    ("R7", "r7_leak.ml", 12, "simram");
    ("R7", "r7_leak.ml", 21, "handle:h");
    ("R7", "r7_leak.ml", 29, "handle:h");
    ("R7", "r7_leak.ml", 34, "handle:h");
    ("R8", "r8_taint.ml", 12, "alpha@Rng.int");
    ("R8", "r8_taint.ml", 16, "alpha->Sim.charge_compare");
    ("R8", "r8_taint.ml", 19, "?@Rng.create");
    ("R9", "r9_order.ml", 8, "Disk.load_page");
    ("R9", "r9_order.ml", 13, "Disk.load_page");
    ("R9", "r9_order.ml", 17, "Disk.persist");
  ]

let describe (r, f, l, o) = Printf.sprintf "%s %s:%d %s" r f l o

let test_fixture_diagnostics () =
  let result = run () in
  let got =
    List.map
      (fun d ->
        (d.Diag.rule, Filename.basename d.Diag.file, d.Diag.line, d.Diag.offender))
      result.Engine.diagnostics
  in
  check "fixture library scanned (18 modules)"
    (result.Engine.files_scanned = 18);
  check
    (Printf.sprintf "fixture violation count (%d, want %d)"
       result.Engine.violations (List.length expected))
    (result.Engine.violations = List.length expected);
  List.iter
    (fun e -> check ("found: " ^ describe e) (List.mem e got))
    expected;
  List.iter
    (fun g ->
      check ("no extra diagnostic: " ^ describe g) (List.mem g expected))
    got;
  check "clean.ml produced nothing"
    (not
       (List.exists
          (fun d -> Filename.basename d.Diag.file = "clean.ml")
          result.Engine.diagnostics));
  (* The r5-allowed module: same unsafe call as r5_unsafe.ml, zero
     diagnostics because "Packed" is in the allowed list. *)
  check "packed.ml is clean under the r5 allowance"
    (not
       (List.exists
          (fun d -> Filename.basename d.Diag.file = "packed.ml")
          result.Engine.diagnostics));
  (* The r1-charge-whitelisted module: the same kind of Sim.charge_ call
     r1_merge.ml is flagged for, zero diagnostics because "Exchange" is in
     charge_allowed. *)
  check "exchange.ml is clean under the r1 charge whitelist"
    (not
       (List.exists
          (fun d -> Filename.basename d.Diag.file = "exchange.ml")
          result.Engine.diagnostics));
  (* The r6-allowed module: same raise/handler as r6_shard_down.ml, zero
     diagnostics because "Failover" is in the allowed list. *)
  check "failover.ml is clean under the r6 allowance"
    (not
       (List.exists
          (fun d -> Filename.basename d.Diag.file = "failover.ml")
          result.Engine.diagnostics));
  (* The dataflow rules' disciplined counterparts: Fun.protect spans, an
     escaping-acquire helper, a catch-all reraise release, owner-module
     draws, charge-dominates-effect orderings — all must stay silent. *)
  List.iter
    (fun f ->
      check (f ^ " is clean under the dataflow rules")
        (not
           (List.exists
              (fun d -> Filename.basename d.Diag.file = f)
              result.Engine.diagnostics)))
    [ "r7_clean.ml"; "r8_clean.ml"; "r9_clean.ml" ];
  (* leaks carry a path trace (acquire -> raising call -> exit) and gate
     at error severity *)
  (match
     List.find_opt
       (fun d ->
         d.Diag.rule = "R7"
         && Filename.basename d.Diag.file = "r7_leak.ml"
         && d.Diag.line = 12)
     result.Engine.diagnostics
   with
  | None -> check "sorted_rids leak diagnostic present" false
  | Some d ->
      check "sorted_rids leak carries a dataflow trace"
        (List.length d.Diag.trace >= 2);
      check "sorted_rids leak is error severity" (d.Diag.severity = Diag.Error));
  (* deterministic output: the engine hands diagnostics back sorted *)
  check "diagnostics are sorted by file/line/col/rule/offender"
    (List.sort Diag.compare result.Engine.diagnostics
    = result.Engine.diagnostics)

let test_allowlist_member () =
  let result =
    run ~allow:[ ("R5 R5_unsafe Array.unsafe_get", "fixture exception") ] ()
  in
  check "member allow drops one violation"
    (result.Engine.violations = List.length expected - 1);
  check "member allow marks it allowlisted" (result.Engine.allowlisted = 1);
  check "allow reason is carried through"
    (List.exists
       (fun d ->
         match d.Diag.status with
         | Diag.Allowlisted r -> r = "fixture exception"
         | _ -> false)
       result.Engine.diagnostics)

let test_allowlist_module_wide () =
  let result =
    run ~allow:[ ("R3 R3_determinism", "fixture-wide exception") ] ()
  in
  check "module-wide allow suppresses all four R3 diagnostics"
    (result.Engine.allowlisted = 4
    && result.Engine.violations = List.length expected - 4)

let test_baseline () =
  let all = run () in
  let baseline =
    List.map Diag.fingerprint all.Engine.diagnostics
    |> List.sort_uniq String.compare
  in
  let result = run ~baseline () in
  check "full baseline silences every violation"
    (result.Engine.violations = 0);
  check "baselined diagnostics are still counted"
    (result.Engine.baselined = List.length expected)

(* --- TOML-subset parser --- *)

let with_temp_config contents f =
  let path = Filename.temp_file ~temp_dir:"." "treelint_test" ".toml" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_toml_multiline_list () =
  with_temp_config
    "[rules.r3]\n\
     # comment with a \"quote\" and = sign\n\
     banned = [\n\
    \  \"Random.\", \"Sys.time\",  # trailing comment\n\
    \  \"Hashtbl.hash\",\n\
     ]\n"
    (fun path ->
      let c = Config.load path in
      check "multi-line list parses"
        (c.Config.r3_banned = [ "Random."; "Sys.time"; "Hashtbl.hash" ]))

let test_toml_quoted_keys_and_types () =
  with_temp_config
    "[layers]\nsim = 0\nstore = 2\n\
     [allow]\n\"R5 Btree Array.unsafe_get\" = \"bounds checked at entry\"\n"
    (fun path ->
      let c = Config.load path in
      check "integer values parse"
        (c.Config.layers = [ ("sim", 0); ("store", 2) ]);
      check "quoted allow keys parse"
        (c.Config.allow
        = [ ("R5 Btree Array.unsafe_get", "bounds checked at entry") ]))

(* --- SARIF emission --- *)

module Sarif = Treelint_sarif

let sarif_results j =
  match Sarif.mem_list j "runs" with
  | [ r ] -> Sarif.mem_list r "results"
  | _ -> []

let level_string = function
  | Diag.Error -> "error"
  | Diag.Warning -> "warning"
  | Diag.Note -> "note"

(* One SARIF result mirrors one diagnostic: rule, level, message, primary
   location, fingerprint, suppression presence, and the code-flow steps. *)
let result_matches (d : Diag.t) r =
  let primary_region =
    match Sarif.mem_list r "locations" with
    | [ l ] ->
        Option.bind (Sarif.member "physicalLocation" l) (Sarif.member "region")
    | _ -> None
  in
  let uri =
    match Sarif.mem_list r "locations" with
    | [ l ] ->
        Option.bind (Sarif.member "physicalLocation" l)
          (Sarif.member "artifactLocation")
        |> Option.map (fun a -> Sarif.mem_str a "uri")
        |> Option.join
    | _ -> None
  in
  Sarif.mem_str r "ruleId" = Some d.Diag.rule
  && Sarif.mem_str r "level" = Some (level_string d.Diag.severity)
  && (match Sarif.member "message" r with
     | Some m -> Sarif.mem_str m "text" = Some d.Diag.message
     | None -> false)
  && uri = Some d.Diag.file
  && Option.bind primary_region (fun reg -> Option.bind (Sarif.member "startLine" reg) Sarif.to_int)
     = Some (max 1 d.Diag.line)
  && (match Sarif.member "partialFingerprints" r with
     | Some pf -> Sarif.mem_str pf "treelint/v1" = Some (Diag.fingerprint d)
     | None -> false)
  && List.length (Sarif.mem_list r "suppressions")
     = (match d.Diag.status with Diag.Violation -> 0 | _ -> 1)
  &&
  let flow_steps =
    match Sarif.mem_list r "codeFlows" with
    | [ cf ] -> (
        match Sarif.mem_list cf "threadFlows" with
        | [ tf ] -> List.length (Sarif.mem_list tf "locations")
        | _ -> -1)
    | [] -> 0
    | _ -> -1
  in
  flow_steps = List.length d.Diag.trace

let test_sarif_fixture_report () =
  let result = run () in
  let s = Sarif.report result.Engine.diagnostics in
  match Sarif.parse s with
  | Error msg -> check ("sarif parses: " ^ msg) false
  | Ok j ->
      check "fixture sarif validates" (Sarif.validate j = Ok ());
      let results = sarif_results j in
      check "fixture sarif result count"
        (List.length results = List.length result.Engine.diagnostics);
      if List.length results = List.length result.Engine.diagnostics then
        check "fixture sarif results mirror the diag list"
          (List.for_all2 result_matches result.Engine.diagnostics results)

(* Property: any diagnostic list — hostile strings included — survives the
   report -> parse -> compare round trip. *)
let test_sarif_roundtrip_qcheck () =
  let open QCheck in
  let gstr = Gen.string_size ~gen:Gen.printable (Gen.int_range 0 24) in
  let gstep = Gen.quad gstr Gen.small_nat Gen.small_nat gstr in
  let gdiag =
    Gen.map
      (fun ((rule, file, line, col), (modname, offender, message), severity, (status, trace)) ->
        {
          Diag.rule;
          file;
          line;
          col;
          modname;
          offender;
          message;
          severity;
          trace;
          status;
        })
      (Gen.quad
         (Gen.quad (Gen.oneofl [ "R1"; "R3"; "R7"; "R8"; "R9" ]) gstr
            Gen.small_nat Gen.small_nat)
         (Gen.triple gstr gstr gstr)
         (Gen.oneofl [ Diag.Error; Diag.Warning; Diag.Note ])
         (Gen.pair
            (Gen.oneof
               [
                 Gen.return Diag.Violation;
                 Gen.map (fun s -> Diag.Allowlisted s) gstr;
                 Gen.return Diag.Baselined;
               ])
            (Gen.list_size (Gen.int_range 0 3) gstep)))
  in
  let arb = make (Gen.list_size (Gen.int_range 0 6) gdiag) in
  let prop diags =
    let s = Sarif.report diags in
    match Sarif.parse s with
    | Error e -> Test.fail_reportf "emitted SARIF fails to parse: %s" e
    | Ok j -> (
        match Sarif.validate j with
        | Error es ->
            Test.fail_reportf "emitted SARIF invalid: %s"
              (String.concat "; " es)
        | Ok () ->
            let results = sarif_results j in
            List.length results = List.length diags
            && List.for_all2 result_matches diags results)
  in
  let t = Test.make ~count:200 ~name:"sarif roundtrip" arb prop in
  check "sarif qcheck roundtrip"
    (match Test.check_exn t with
    | () -> true
    | exception e ->
        print_endline ("  " ^ Printexc.to_string e);
        false)

(* --- incremental cache --- *)

let diag_key d =
  ( d.Diag.rule,
    d.Diag.file,
    d.Diag.line,
    d.Diag.col,
    d.Diag.offender,
    d.Diag.severity,
    d.Diag.trace,
    Diag.status_string d.Diag.status )

let test_cache_identity () =
  let config = Config.load "treelint_test.toml" in
  let path = Filename.temp_file ~temp_dir:"." "treelint_cache" ".bin" in
  Sys.remove path;
  let go ~salt =
    Engine.run ~cache:(path, salt) ~config ~baseline:[] ~extra_dirs
      ~dirs:[ fixtures_dir ] ()
  in
  let cold = go ~salt:"salt0" in
  check "cache file written on a cold run" (Sys.file_exists path);
  let warm = go ~salt:"salt0" in
  check "warm cache replays identical findings"
    (List.map diag_key cold.Engine.diagnostics
     = List.map diag_key warm.Engine.diagnostics
    && cold.Engine.files_scanned = warm.Engine.files_scanned
    && cold.Engine.violations = warm.Engine.violations);
  (* a config/baseline change (new salt) must invalidate, and the re-scan
     must land on the same findings *)
  let rescan = go ~salt:"salt1" in
  check "salt change rescans to the same findings"
    (List.map diag_key cold.Engine.diagnostics
    = List.map diag_key rescan.Engine.diagnostics);
  if Sys.file_exists path then Sys.remove path

(* --- the CLI: --update-baseline rewrite order, baseline gating --- *)

let treelint_bin = "../bin/treelint_main.exe"

let run_cli args =
  let cmi_args =
    String.concat " "
      (List.map
         (fun d -> "--cmi " ^ Filename.quote (Filename.concat d "x.cmi"))
         extra_dirs)
  in
  Sys.command
    (Printf.sprintf "%s --config treelint_test.toml %s %s %s > /dev/null"
       treelint_bin cmi_args args fixtures_dir)

let test_update_baseline () =
  if not (Sys.file_exists treelint_bin) then
    check "update-baseline: treelint binary present" false
  else begin
    let baseline = Filename.temp_file ~temp_dir:"." "treelint_baseline" ".txt" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists baseline then Sys.remove baseline)
      (fun () ->
        let rc =
          run_cli
            (Printf.sprintf "--baseline %s --update-baseline"
               (Filename.quote baseline))
        in
        check "update-baseline: rewrite exits 0" (rc = 0);
        (* the rewritten file holds each violation's fingerprint once, in
           source order (the engine's deterministic diagnostic order) *)
        let all = run () in
        let seen = Hashtbl.create 64 in
        let expected_lines =
          List.filter_map
            (fun d ->
              let fp = Diag.fingerprint d in
              if Hashtbl.mem seen fp then None
              else begin
                Hashtbl.replace seen fp ();
                Some fp
              end)
            all.Engine.diagnostics
        in
        let written =
          let ic = open_in baseline in
          let rec go acc =
            match input_line ic with
            | l ->
                let l = String.trim l in
                go (if l = "" || l.[0] = '#' then acc else l :: acc)
            | exception End_of_file ->
                close_in ic;
                List.rev acc
          in
          go []
        in
        check "update-baseline: fingerprints in stable source order"
          (written = expected_lines);
        (* under the rewritten baseline every finding is grandfathered:
           the gate opens *)
        let rc2 =
          run_cli (Printf.sprintf "--baseline %s" (Filename.quote baseline))
        in
        check "update-baseline: baselined run exits 0" (rc2 = 0);
        (* without it, error-severity violations gate *)
        let rc3 = run_cli "" in
        check "violations gate with exit 1" (rc3 = 1))
  end

let expect_parse_error name contents =
  with_temp_config contents (fun path ->
      check name
        (match Config.load path with
        | _ -> false
        | exception Config.Parse_error _ -> true))

let test_toml_errors () =
  expect_parse_error "empty allow reason is rejected"
    "[allow]\n\"R1 Exec\" = \"\"\n";
  expect_parse_error "unterminated list is rejected" "[rules.r5]\nbanned = [\n";
  expect_parse_error "junk value is rejected" "[layers]\nsim = zero\n"

let () =
  test_fixture_diagnostics ();
  test_allowlist_member ();
  test_allowlist_module_wide ();
  test_baseline ();
  test_sarif_fixture_report ();
  test_sarif_roundtrip_qcheck ();
  test_cache_identity ();
  test_update_baseline ();
  test_toml_multiline_list ();
  test_toml_quoted_keys_and_types ();
  test_toml_errors ();
  if !failures > 0 then begin
    Printf.printf "treelint_tests: %d failure(s)\n" !failures;
    exit 1
  end
  else print_endline "treelint_tests: all passed"
