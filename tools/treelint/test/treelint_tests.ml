(* Treelint's own test suite: runs the engine over the fixture library (one
   deliberately violating module per rule, one clean module) and asserts the
   exact rule ids, locations and offenders; then exercises allowlist and
   baseline suppression and the TOML-subset parser.

   Runs from _build/default/tools/treelint/test; fixture cmts are next door
   and the repo libraries' cmis three levels up.  argv carries extra cmi
   directories (dune passes fmt's). *)

module Config = Treelint_config
module Diag = Treelint_diag
module Engine = Treelint_engine

let failures = ref 0

let check name cond =
  if cond then print_endline ("ok   " ^ name)
  else begin
    incr failures;
    print_endline ("FAIL " ^ name)
  end

let fixtures_dir = "fixtures/.treelint_fixtures.objs/byte"

let lib_objs =
  List.filter Sys.file_exists
    [
      "../../../lib/sim/.tb_sim.objs/byte";
      "../../../lib/storage/.tb_storage.objs/byte";
      "../../../lib/store/.tb_store.objs/byte";
      "../../../lib/query/.tb_query.objs/byte";
      "../../../lib/derby/.tb_derby.objs/byte";
      "../../../lib/oo7/.tb_oo7.objs/byte";
      "../../../lib/statdb/.tb_statdb.objs/byte";
      "../../../lib/core/.tb_core.objs/byte";
    ]

let extra_dirs =
  lib_objs @ List.map Filename.dirname (List.tl (Array.to_list Sys.argv))

let run ?(allow = []) ?(baseline = []) () =
  let config = Config.load "treelint_test.toml" in
  let config = { config with Config.allow = config.Config.allow @ allow } in
  Engine.run ~config ~baseline ~extra_dirs ~dirs:[ fixtures_dir ] ()

(* (rule, source basename, line, offender) for every expected diagnostic;
   fixture line numbers are load-bearing. *)
let expected =
  [
    ("R1", "r1_page.ml", 5, "Disk.load_page");
    ("R1", "r1_page.ml", 7, "Sim.charge_disk_read");
    ("R1", "r1_merge.ml", 4, "Sim.charge_compare");
    ("R2", "r2_shard.ml", 5, "Shard_map.count");
    ("R2", "r2_layers.ml", 4, "core.Fingerprint.collect");
    ("R2", "r2_layers.ml", 6, "Page_layout.size");
    ("R3", "r3_determinism.ml", 6, "Random.int");
    ("R3", "r3_determinism.ml", 8, "=@boxed");
    ("R3", "r3_determinism.ml", 10, "Hashtbl.hash");
    ("R3", "r3_determinism.ml", 12, "Hashtbl.create@boxed");
    ("R4", "r4_state.ml", 4, "forgotten");
    ("R5", "r5_unsafe.ml", 3, "Array.unsafe_get");
    ("R5", "r5_unsafe.ml", 5, "Bytes.unsafe_get");
    ("R6", "r6_shard_down.ml", 4, "Fault.Shard_down");
    ("R6", "r6_shard_down.ml", 6, "Fault.Shard_down");
  ]

let describe (r, f, l, o) = Printf.sprintf "%s %s:%d %s" r f l o

let test_fixture_diagnostics () =
  let result = run () in
  let got =
    List.map
      (fun d ->
        (d.Diag.rule, Filename.basename d.Diag.file, d.Diag.line, d.Diag.offender))
      result.Engine.diagnostics
  in
  check "fixture library scanned (12 modules)"
    (result.Engine.files_scanned = 12);
  check
    (Printf.sprintf "fixture violation count (%d, want %d)"
       result.Engine.violations (List.length expected))
    (result.Engine.violations = List.length expected);
  List.iter
    (fun e -> check ("found: " ^ describe e) (List.mem e got))
    expected;
  List.iter
    (fun g ->
      check ("no extra diagnostic: " ^ describe g) (List.mem g expected))
    got;
  check "clean.ml produced nothing"
    (not
       (List.exists
          (fun d -> Filename.basename d.Diag.file = "clean.ml")
          result.Engine.diagnostics));
  (* The r5-allowed module: same unsafe call as r5_unsafe.ml, zero
     diagnostics because "Packed" is in the allowed list. *)
  check "packed.ml is clean under the r5 allowance"
    (not
       (List.exists
          (fun d -> Filename.basename d.Diag.file = "packed.ml")
          result.Engine.diagnostics));
  (* The r1-charge-whitelisted module: the same kind of Sim.charge_ call
     r1_merge.ml is flagged for, zero diagnostics because "Exchange" is in
     charge_allowed. *)
  check "exchange.ml is clean under the r1 charge whitelist"
    (not
       (List.exists
          (fun d -> Filename.basename d.Diag.file = "exchange.ml")
          result.Engine.diagnostics));
  (* The r6-allowed module: same raise/handler as r6_shard_down.ml, zero
     diagnostics because "Failover" is in the allowed list. *)
  check "failover.ml is clean under the r6 allowance"
    (not
       (List.exists
          (fun d -> Filename.basename d.Diag.file = "failover.ml")
          result.Engine.diagnostics))

let test_allowlist_member () =
  let result =
    run ~allow:[ ("R5 R5_unsafe Array.unsafe_get", "fixture exception") ] ()
  in
  check "member allow drops one violation"
    (result.Engine.violations = List.length expected - 1);
  check "member allow marks it allowlisted" (result.Engine.allowlisted = 1);
  check "allow reason is carried through"
    (List.exists
       (fun d ->
         match d.Diag.status with
         | Diag.Allowlisted r -> r = "fixture exception"
         | _ -> false)
       result.Engine.diagnostics)

let test_allowlist_module_wide () =
  let result =
    run ~allow:[ ("R3 R3_determinism", "fixture-wide exception") ] ()
  in
  check "module-wide allow suppresses all four R3 diagnostics"
    (result.Engine.allowlisted = 4
    && result.Engine.violations = List.length expected - 4)

let test_baseline () =
  let all = run () in
  let baseline =
    List.map Diag.fingerprint all.Engine.diagnostics
    |> List.sort_uniq String.compare
  in
  let result = run ~baseline () in
  check "full baseline silences every violation"
    (result.Engine.violations = 0);
  check "baselined diagnostics are still counted"
    (result.Engine.baselined = List.length expected)

(* --- TOML-subset parser --- *)

let with_temp_config contents f =
  let path = Filename.temp_file ~temp_dir:"." "treelint_test" ".toml" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_toml_multiline_list () =
  with_temp_config
    "[rules.r3]\n\
     # comment with a \"quote\" and = sign\n\
     banned = [\n\
    \  \"Random.\", \"Sys.time\",  # trailing comment\n\
    \  \"Hashtbl.hash\",\n\
     ]\n"
    (fun path ->
      let c = Config.load path in
      check "multi-line list parses"
        (c.Config.r3_banned = [ "Random."; "Sys.time"; "Hashtbl.hash" ]))

let test_toml_quoted_keys_and_types () =
  with_temp_config
    "[layers]\nsim = 0\nstore = 2\n\
     [allow]\n\"R5 Btree Array.unsafe_get\" = \"bounds checked at entry\"\n"
    (fun path ->
      let c = Config.load path in
      check "integer values parse"
        (c.Config.layers = [ ("sim", 0); ("store", 2) ]);
      check "quoted allow keys parse"
        (c.Config.allow
        = [ ("R5 Btree Array.unsafe_get", "bounds checked at entry") ]))

let expect_parse_error name contents =
  with_temp_config contents (fun path ->
      check name
        (match Config.load path with
        | _ -> false
        | exception Config.Parse_error _ -> true))

let test_toml_errors () =
  expect_parse_error "empty allow reason is rejected"
    "[allow]\n\"R1 Exec\" = \"\"\n";
  expect_parse_error "unterminated list is rejected" "[rules.r5]\nbanned = [\n";
  expect_parse_error "junk value is rejected" "[layers]\nsim = zero\n"

let () =
  test_fixture_diagnostics ();
  test_allowlist_member ();
  test_allowlist_module_wide ();
  test_baseline ();
  test_toml_multiline_list ();
  test_toml_quoted_keys_and_types ();
  test_toml_errors ();
  if !failures > 0 then begin
    Printf.printf "treelint_tests: %d failure(s)\n" !failures;
    exit 1
  end
  else print_endline "treelint_tests: all passed"
